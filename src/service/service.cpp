#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "harness/scheduler.hpp"
#include "net/frame_mux.hpp"
#include "runtime/sim_runtime.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/task_pool.hpp"
#include "trace/trace.hpp"
#include "turquois/exchange_pool.hpp"
#include "turquois/process.hpp"

namespace turq::service {

using harness::RunResult;
using harness::ScenarioConfig;

double commit_latency_ms(SimTime arrival, SimTime commit) {
  TURQ_ASSERT_MSG(commit >= arrival,
                  "commit cannot precede the request's arrival");
  return to_milliseconds(std::max<SimDuration>(commit - arrival, 1));
}

const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kBursty: return "bursty";
  }
  return "?";
}

namespace {

/// Exponential variate with the given rate (events per simulated second),
/// as a simulated duration. The workload generator's only randomness sink.
SimDuration exp_gap(Rng& rng, double rate_per_sec) {
  TURQ_ASSERT(rate_per_sec > 0.0);
  const double u = rng.uniform_double();  // [0, 1)
  const double seconds = -std::log1p(-u) / rate_per_sec;
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

/// Client arrival stream: plain Poisson, or Markov-modulated Poisson with
/// exponential dwells in a base and a burst state, normalized so the
/// long-run mean rate is offered_load either way.
class ArrivalGen {
 public:
  ArrivalGen(const ServiceConfig& svc, Rng rng)
      : svc_(svc), rng_(std::move(rng)) {
    // mean rate = base * ((1 - frac) + frac * factor)  =>  solve for base.
    const double boost =
        1.0 - svc.burst_fraction + svc.burst_fraction * svc.burst_factor;
    base_rate_ = svc.offered_load / boost;
    if (svc.arrival == Arrival::kBursty) {
      next_switch_ = exp_gap(rng_, to_rate(good_dwell()));
    }
  }

  /// The next arrival strictly after the previous one.
  SimTime next() {
    if (svc_.arrival == Arrival::kPoisson) {
      last_ += exp_gap(rng_, base_rate_);
      return last_;
    }
    // Bursty: walk dwell episodes until the drawn gap lands inside one.
    SimTime t = last_;
    for (;;) {
      const double rate =
          bursting_ ? base_rate_ * svc_.burst_factor : base_rate_;
      const SimDuration gap = exp_gap(rng_, rate);
      if (t + gap <= next_switch_) {
        last_ = t + gap;
        return last_;
      }
      t = next_switch_;
      bursting_ = !bursting_;
      next_switch_ =
          t + exp_gap(rng_, to_rate(bursting_ ? svc_.burst_dwell
                                              : good_dwell()));
    }
  }

 private:
  /// Base-state dwell length realizing burst_fraction of time bursting.
  [[nodiscard]] SimDuration good_dwell() const {
    const double f = std::clamp(svc_.burst_fraction, 1e-6, 1.0 - 1e-6);
    return static_cast<SimDuration>(
        static_cast<double>(svc_.burst_dwell) * (1.0 - f) / f);
  }
  static double to_rate(SimDuration mean) {
    return static_cast<double>(kSecond) / static_cast<double>(mean);
  }

  const ServiceConfig& svc_;
  Rng rng_;
  double base_rate_ = 1.0;
  bool bursting_ = false;
  SimTime last_ = 0;
  SimTime next_switch_ = 0;
};

/// One in-flight consensus instance: its processes, auditor, shared
/// prepared-exchange cache, and the batch of requests it is deciding.
struct Instance {
  std::uint32_t seq = 0;
  std::vector<std::unique_ptr<runtime::SimRuntime>> runtimes;
  std::vector<std::unique_ptr<turquois::Process>> procs;
  std::unique_ptr<turquois::ExchangePool> pool;
  std::unique_ptr<audit::ConsensusAuditor> auditor;
  std::vector<SimTime> request_arrivals;  // the admitted batch's stamps
  std::uint32_t decided_procs = 0;
  bool committed = false;
  bool finalized = false;
};

RunResult run_service_rep(const ScenarioConfig& cfg, std::uint64_t rep_index) {
  const ServiceConfig& svc = cfg.service;
  Rng root = Rng::stream(cfg.seed, "rep", rep_index);

  turquois::Config tcfg = turquois::Config::for_group(cfg.n);
  tcfg.tick_interval = cfg.tick_interval;
  tcfg.tick_jitter = cfg.tick_jitter;
  tcfg.phases_per_epoch = svc.phases_per_instance;

  sim::Simulator sim;
  net::Medium medium(sim, cfg.medium, root.derive("medium", 0));

  // Ambient channel faults, wired exactly as the single-instance harness
  // does it (experiment.cpp setup_medium). validate_service pins the plan
  // to the failure-free role, so only the ambient clause injects.
  const faultplan::FaultPlan plan = cfg.effective_plan();
  faultplan::BuildContext fctx;
  fctx.n = cfg.n;
  fctx.f = cfg.f();
  fctx.k = cfg.k();
  fctx.t = 0;
  fctx.ambient_loss_rate = cfg.loss_rate;
  fctx.ambient_bursts = cfg.bursty_loss;
  fctx.ambient_burst_params = cfg.burst_params;
  constexpr SimDuration kFrameSlot = 2 * kMillisecond;
  const SimDuration exchange = static_cast<SimDuration>(cfg.n) * kFrameSlot;
  const SimDuration ticks_per_round =
      (exchange + cfg.tick_interval - 1) / cfg.tick_interval;
  fctx.round_duration =
      cfg.tick_interval *
      std::max<SimDuration>(SimDuration{1}, ticks_per_round);
  fctx.root = root;
  faultplan::BuiltPlan faults = faultplan::build(plan, fctx);
  medium.set_fault_injector(faults.injector.get());

  // Per physical node: one virtual CPU (crypto serializes on the node's
  // processor whichever instance it serves) and one frame mux (one radio —
  // all in-flight instances share its broadcast frames).
  net::FrameMuxConfig mux_cfg;
  mux_cfg.window = svc.mux_window;
  mux_cfg.max_payload_bytes =
      cfg.medium.max_frame_bytes - net::BroadcastEndpoint::kUdpIpOverhead;
  std::vector<std::unique_ptr<sim::VirtualCpu>> cpus;
  std::vector<std::unique_ptr<net::FrameMux>> muxes;
  for (ProcessId id = 0; id < cfg.n; ++id) {
    cpus.push_back(std::make_unique<sim::VirtualCpu>(sim));
    muxes.push_back(std::make_unique<net::FrameMux>(sim, medium, id, mux_cfg));
  }

  // Instance state is declared BEFORE the worker pool: teardown runs in
  // reverse, so the pool drains and joins (completing any in-flight
  // prefetch fill) while the ExchangePool entries and key material it
  // reads are still alive. For the same reason retired instances and spent
  // key batches stay allocated until the repetition ends.
  std::vector<std::vector<turquois::KeyInfrastructure>> key_batches;
  std::vector<std::unique_ptr<Instance>> instances;
  std::vector<std::uint32_t> active;  // seqs in flight, ascending
  std::unique_ptr<sim::TaskPool> intra_pool;
  if (sim::TaskPool::resolve(cfg.intra_jobs) > 1) {
    intra_pool =
        std::make_unique<sim::TaskPool>(sim::TaskPool::resolve(cfg.intra_jobs));
  }

  RunResult result;
  RepSummary sum;
  audit::AuditReport rep_audit;  // merged per-instance violations
  rep_audit.checked = cfg.audit;
  std::uint64_t pool_acquires = 0;
  std::uint64_t pool_hits = 0;

  // Open-loop client arrivals, stamped into the replicated queue (or
  // rejected at the admission bound). Generation is lazy — each arrival
  // event schedules the next — so large request counts don't
  // pre-materialize their event queue.
  std::deque<SimTime> queue;
  ArrivalGen gen(svc, root.derive("svc-arrivals", 0));
  std::function<void(SimTime)> schedule_arrival = [&](SimTime at) {
    sim.schedule_at(at, [&, at] {
      ++sum.arrivals;
      if (queue.size() >= svc.queue_capacity) {
        ++sum.rejected;
      } else {
        queue.push_back(at);
      }
      if (sum.arrivals < svc.total_requests) schedule_arrival(gen.next());
    });
  };
  schedule_arrival(gen.next());

  const std::uint32_t kb = svc.effective_key_batch();
  std::uint32_t next_seq = 0;

  auto launch = [&]() {
    const std::uint32_t seq = next_seq++;
    const std::uint32_t batch_index = seq / kb;
    if (batch_index >= key_batches.size()) {
      // One trusted-setup pass keys the next kb instances: one RNG draw
      // pass, one 8-way SHA-256 sweep, one RSA pair per process.
      Rng key_rng = root.derive("svc-keys", batch_index);
      key_batches.push_back(
          turquois::KeyInfrastructure::setup_batch(tcfg, key_rng, kb));
      ++sum.key_batches;
    }
    const turquois::KeyInfrastructure& infra =
        key_batches[batch_index][seq % kb];

    auto inst = std::make_unique<Instance>();
    Instance* raw = inst.get();
    raw->seq = seq;
    const std::size_t take = std::min<std::size_t>(svc.batch, queue.size());
    raw->request_arrivals.assign(queue.begin(),
                                 queue.begin() + static_cast<long>(take));
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(take));
    if (cfg.audit) {
      audit::AuditConfig acfg;
      acfg.n = cfg.n;
      acfg.f = cfg.f();
      acfg.k = cfg.k();
      acfg.phase_bound = cfg.audit_phase_bound;
      raw->auditor = std::make_unique<audit::ConsensusAuditor>(acfg);
    }
    if (cfg.exchange_pool) {
      raw->pool = std::make_unique<turquois::ExchangePool>(infra, tcfg,
                                                           intra_pool.get());
    }

    // Every process proposes kOne: the servers all hold the replicated
    // batch, so admission is the unanimous load (Validity then pins the
    // decision to kOne).
    Rng start_rng = root.derive("svc-start", seq);
    for (ProcessId id = 0; id < cfg.n; ++id) {
      audit::ConsensusAuditor* auditor = raw->auditor.get();
      turquois::ProcessHooks hooks;
      hooks.exchange_pool = raw->pool.get();
      hooks.on_decide = [raw, id, auditor, &result, &sum,
                         k = cfg.k()](Value v, turquois::Phase phase,
                                      SimTime at) {
        if (auditor != nullptr) auditor->on_decide(id, v, phase, at);
        ++raw->decided_procs;
        if (!raw->committed && raw->decided_procs >= k) {
          // The k-th process decided: the slot's batch is committed. Stamp
          // each request's end-to-end latency.
          raw->committed = true;
          for (const SimTime arrival : raw->request_arrivals) {
            result.latencies_ms.push_back(commit_latency_ms(arrival, at));
          }
          sum.committed += raw->request_arrivals.size();
        }
      };
      if (auditor != nullptr) {
        hooks.on_phase = [id, auditor](turquois::Phase phase, SimTime at) {
          auditor->on_phase(id, phase, at);
        };
      }
      raw->runtimes.push_back(
          std::make_unique<runtime::SimRuntime>(sim, *cpus[id]));
      raw->procs.push_back(std::make_unique<turquois::Process>(
          *raw->runtimes.back(), muxes[id]->port(seq), tcfg, infra, id,
          root.derive("svc-proc",
                      static_cast<std::uint64_t>(seq) * cfg.n + id),
          cfg.costs, std::move(hooks)));
      turquois::Process* p = raw->procs.back().get();
      const auto offset = static_cast<SimDuration>(start_rng.uniform(
          static_cast<std::uint64_t>(cfg.start_spread) + 1));
      if (auditor != nullptr) {
        auditor->on_propose(id, Value::kOne, sim.now() + offset);
      }
      sim.schedule(offset, [p] { p->propose(Value::kOne); });
    }
    active.push_back(seq);
    instances.push_back(std::move(inst));
    ++sum.instances_launched;
  };

  auto finalize = [&](Instance& inst) {
    inst.finalized = true;
    ++sum.instances_decided;
    // Per-instance safety: Agreement across the instance's processes,
    // Validity against the unanimous kOne proposal.
    std::optional<Value> agreed;
    for (const auto& p : inst.procs) {
      if (!p->decided()) continue;
      if (agreed.has_value() && *agreed != p->decision()) {
        result.agreement_held = false;
      }
      agreed = p->decision();
      if (p->decision() != Value::kOne) result.validity_held = false;
    }
    if (inst.auditor != nullptr) {
      // Quorum sanity, exactly the harness's Turquois view scan: every
      // decision needs a decide-phase quorum for the value in the
      // decider's final view.
      for (const auto& p : inst.procs) {
        if (!p->decided()) continue;
        const Value v = p->decision();
        const turquois::Message* highest = p->view().highest_phase_message();
        bool evidence = false;
        if (highest != nullptr) {
          for (turquois::Phase dph = 3; dph <= highest->phase; dph += 3) {
            if (tcfg.exceeds_quorum(p->view().count_phase_value(dph, v))) {
              evidence = true;
              break;
            }
          }
        }
        if (!evidence) {
          inst.auditor->note_violation(
              audit::Property::kQuorumSanity, p->id(),
              "decided " + turq::to_string(v) +
                  " without a decide-phase quorum for it in the final view");
        }
      }
      // σ accounting is per repetition, not per instance, so each
      // instance's report skips the σ-liveness clause (finish with no
      // summary); the deadline verdict is true by construction — the
      // instance is finalized because all n processes decided.
      const audit::AuditReport report =
          inst.auditor->finish(std::nullopt, /*all_correct_decided=*/true);
      ++sum.audit_checked_instances;
      if (!report.passed()) ++sum.audit_violating_instances;
      for (const audit::Violation& v : report.violations) {
        rep_audit.violations.push_back(v);
      }
    }
    for (const auto& p : inst.procs) {
      result.app_messages += p->stats().broadcasts;
      p->crash();  // closes the instance port before the mux retires it
    }
    if (inst.pool != nullptr) {
      const turquois::ExchangePool::Stats& ps = inst.pool->stats();
      pool_acquires += ps.acquires;
      pool_hits += ps.shared_hits;
    }
    for (ProcessId id = 0; id < cfg.n; ++id) muxes[id]->retire(inst.seq);
  };

  // Drive loop (collect()'s shape): 1 ms slices; between slices finalize
  // fully decided instances, refill the pipeline window from the queue,
  // and test for completion. Refilling between slices quantizes launch
  // times to the slice boundary — deterministically.
  const SimTime deadline = cfg.run_timeout;
  for (;;) {
    for (std::size_t i = 0; i < active.size();) {
      Instance& inst = *instances[active[i]];
      if (!inst.finalized && inst.decided_procs >= cfg.n) {
        finalize(inst);
        active.erase(active.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    while (active.size() < svc.pipeline_depth && !queue.empty()) launch();
    if (sum.arrivals >= svc.total_requests && queue.empty() &&
        active.empty()) {
      break;
    }
    if (sim.now() >= deadline) break;
    const SimTime slice = std::min<SimTime>(deadline, sim.now() + kMillisecond);
    if (sim.run_until(slice) == 0 && sim.idle()) break;
  }
  sum.finished_at = sim.now();
  sum.instances_failed = active.size();
  // One latency sample per committed request, none for rejected or still
  // in-flight ones: rejection happens before the queue, so a rejected
  // arrival can never reach an instance batch and be stamped.
  TURQ_ASSERT_MSG(result.latencies_ms.size() == sum.committed,
                  "latency samples must match committed requests 1:1");

  for (const auto& mux : muxes) {
    const net::FrameMux::Stats& ms = mux->stats();
    sum.mux_frames += ms.frames_sent;
    sum.mux_payloads += ms.payloads_sent;
    sum.mux_splits += ms.frame_splits;
    sum.mux_late_drops += ms.late_drops;
    sum.mux_superseded += ms.superseded;
  }

  result.all_correct_decided = sum.arrivals >= svc.total_requests &&
                               queue.empty() && sum.instances_failed == 0;
  result.k_decided = result.all_correct_decided;
  if (sum.committed > 0) result.decision = Value::kOne;
  result.medium = medium.stats();
  if (cfg.audit) result.audit = std::move(rep_audit);
  result.service = sum;

#if TURQ_TRACE_ENABLED
  if (trace::Tracer* t = trace::current()) {
    t->metrics().merge(medium.metrics());
    auto& m = t->metrics();
    m.counter("app.messages")
        .add(static_cast<std::int64_t>(result.app_messages));
    m.counter("service.arrivals").add(static_cast<std::int64_t>(sum.arrivals));
    m.counter("service.committed")
        .add(static_cast<std::int64_t>(sum.committed));
    m.counter("service.rejected").add(static_cast<std::int64_t>(sum.rejected));
    m.counter("service.instances_launched")
        .add(static_cast<std::int64_t>(sum.instances_launched));
    m.counter("service.instances_decided")
        .add(static_cast<std::int64_t>(sum.instances_decided));
    m.counter("service.instances_failed")
        .add(static_cast<std::int64_t>(sum.instances_failed));
    m.counter("service.key_batches")
        .add(static_cast<std::int64_t>(sum.key_batches));
    m.counter("service.mux_frames")
        .add(static_cast<std::int64_t>(sum.mux_frames));
    m.counter("service.mux_payloads")
        .add(static_cast<std::int64_t>(sum.mux_payloads));
    m.counter("service.mux_splits")
        .add(static_cast<std::int64_t>(sum.mux_splits));
    m.counter("service.mux_late_drops")
        .add(static_cast<std::int64_t>(sum.mux_late_drops));
    m.counter("service.mux_superseded")
        .add(static_cast<std::int64_t>(sum.mux_superseded));
    if (cfg.exchange_pool) {
      // Acquire-side counters only — deterministic at any --intra-jobs
      // (see ExchangePool::Stats), summed over this repetition's instances.
      m.counter("exchange_pool.acquires")
          .add(static_cast<std::int64_t>(pool_acquires));
      m.counter("exchange_pool.hits")
          .add(static_cast<std::int64_t>(pool_hits));
      m.counter("exchange_pool.misses")
          .add(static_cast<std::int64_t>(pool_acquires - pool_hits));
    }
    if (result.audit.has_value()) {
      m.counter("audit.checked_reps").add(1);
      m.counter("audit.violations")
          .add(static_cast<std::int64_t>(result.audit->violations.size()));
      m.counter("audit.violating_reps").add(result.audit->passed() ? 0 : 1);
      for (const audit::Violation& v : result.audit->violations) {
        m.counter(std::string("audit.") + audit::to_string(v.property)).add(1);
      }
    }
    t->emit(trace::TraceEvent{
        .at = sim.now(), .category = trace::Category::kHarness,
        .kind = trace::Kind::kRepEnd,
        .value = static_cast<std::int64_t>(rep_index)});
  }
#endif
  return result;
}

}  // namespace

std::optional<std::string> validate_service(const ScenarioConfig& cfg) {
  const ServiceConfig& svc = cfg.service;
  if (!svc.enabled) return "service: ServiceConfig::enabled must be set";
  if (cfg.protocol != harness::Protocol::kTurquois) {
    return "service: only the Turquois protocol runs under the service layer";
  }
  if (svc.pipeline_depth == 0) return "service: pipeline depth W must be >= 1";
  if (svc.batch == 0) return "service: proposal batch B must be >= 1";
  if (!(svc.offered_load > 0.0)) {
    return "service: offered load must be > 0 requests per second";
  }
  if (svc.total_requests == 0) return "service: need total_requests >= 1";
  if (svc.queue_capacity == 0) return "service: queue capacity must be >= 1";
  if (svc.phases_per_instance < 6 || svc.phases_per_instance % 3 != 0) {
    return "service: phases_per_instance must be a multiple of 3 and >= 6 "
           "(chains must cover whole CONVERGE/LOCK/DECIDE cycles)";
  }
  if (svc.arrival == Arrival::kBursty) {
    if (!(svc.burst_factor >= 1.0)) return "service: burst factor must be >= 1";
    if (!(svc.burst_fraction > 0.0) || !(svc.burst_fraction < 1.0)) {
      return "service: burst fraction must be in (0, 1)";
    }
    if (svc.burst_dwell == 0) return "service: burst dwell must be > 0";
  }
  if (cfg.spatial.active()) {
    return "service: spatial topologies are not yet supported under the "
           "service layer";
  }
  const faultplan::FaultPlan plan = cfg.effective_plan();
  if (plan.role != faultplan::Role::kNone) {
    return "service: only the failure-free fault load is supported (got "
           "role-bearing plan '" +
           plan.name + "')";
  }
  return std::nullopt;
}

RunResult run_service_once(const ScenarioConfig& cfg, std::uint64_t rep_index) {
#if TURQ_TRACE_ENABLED
  // Mirror harness::run_once: one tracer per repetition, one
  // kRepBegin/kRepEnd-marked block flushed into the sink.
  std::optional<trace::Tracer> tracer;
  std::optional<trace::TraceScope> scope;
  if (cfg.trace_sink != nullptr) {
    trace::TracerOptions topt;
    topt.sim_events = cfg.trace_sim_events;
    tracer.emplace(topt);
    scope.emplace(&*tracer);
    tracer->emit(trace::TraceEvent{
        .at = 0, .category = trace::Category::kHarness,
        .kind = trace::Kind::kRepBegin,
        .value = static_cast<std::int64_t>(rep_index)});
  }
#endif
  RunResult result = run_service_rep(cfg, rep_index);
#if TURQ_TRACE_ENABLED
  if (tracer.has_value()) tracer->flush(*cfg.trace_sink);
#endif
  return result;
}

double ServiceScenarioResult::committed_per_sim_sec() const {
  const double secs =
      static_cast<double>(totals.finished_at) / static_cast<double>(kSecond);
  return secs > 0.0 ? static_cast<double>(totals.committed) / secs : 0.0;
}

double ServiceScenarioResult::instances_per_sim_sec() const {
  const double secs =
      static_cast<double>(totals.finished_at) / static_cast<double>(kSecond);
  return secs > 0.0 ? static_cast<double>(totals.instances_decided) / secs
                    : 0.0;
}

ServiceScenarioResult run_service(const ScenarioConfig& cfg) {
  if (const auto reason = harness::validate(cfg)) {
    throw std::invalid_argument("invalid scenario: " + *reason);
  }
  if (const auto reason = validate_service(cfg)) {
    throw std::invalid_argument("invalid scenario: " + *reason);
  }

  ServiceScenarioResult result;
  result.config = cfg;
  const auto reps = harness::run_repetitions(
      cfg, [](const ScenarioConfig& c, std::uint64_t rep) {
        return run_service_once(c, rep);
      });
  for (const harness::RepResult& rep : reps) {
    if (rep.crashed) {
      TURQ_WARN("service repetition %llu crashed: %s",
                static_cast<unsigned long long>(rep.rep_index),
                rep.error.c_str());
      ++result.failed_runs;
      continue;
    }
    const RunResult& run = rep.run;
    if (!run.agreement_held || !run.validity_held ||
        (run.audit.has_value() && !run.audit->passed())) {
      ++result.safety_violations;
    }
    if (run.audit.has_value()) {
      // Instance-grained merge: checked/violating count instances (from the
      // repetition summary below); the violation details ride the merged
      // per-repetition report.
      if (!result.audit.has_value()) result.audit.emplace();
      result.audit->violations += run.audit->violations.size();
      for (const audit::Violation& v : run.audit->violations) {
        ++result.audit->by_property[static_cast<std::size_t>(v.property)];
      }
    }
    if (run.service.has_value()) {
      const RepSummary& s = *run.service;
      if (result.audit.has_value()) {
        result.audit->checked_reps += s.audit_checked_instances;
        result.audit->violating_reps += s.audit_violating_instances;
      }
      RepSummary& t = result.totals;
      t.arrivals += s.arrivals;
      t.committed += s.committed;
      t.rejected += s.rejected;
      t.instances_launched += s.instances_launched;
      t.instances_decided += s.instances_decided;
      t.instances_failed += s.instances_failed;
      t.key_batches += s.key_batches;
      t.audit_checked_instances += s.audit_checked_instances;
      t.audit_violating_instances += s.audit_violating_instances;
      t.finished_at += s.finished_at;
      t.mux_frames += s.mux_frames;
      t.mux_payloads += s.mux_payloads;
      t.mux_splits += s.mux_splits;
      t.mux_late_drops += s.mux_late_drops;
      t.mux_superseded += s.mux_superseded;
    }
    if (!run.all_correct_decided) {
      ++result.failed_runs;
      continue;
    }
    result.latency_ms.add_all(run.latencies_ms);
    result.app_messages += run.app_messages;
    result.medium_total.broadcast_frames += run.medium.broadcast_frames;
    result.medium_total.unicast_frames += run.medium.unicast_frames;
    result.medium_total.collisions += run.medium.collisions;
    result.medium_total.mac_retries += run.medium.mac_retries;
    result.medium_total.unicast_drops += run.medium.unicast_drops;
    result.medium_total.deliveries += run.medium.deliveries;
    result.medium_total.omissions += run.medium.omissions;
    result.medium_total.frames_collided += run.medium.frames_collided;
    result.medium_total.bytes_on_air += run.medium.bytes_on_air;
    result.medium_total.airtime += run.medium.airtime;
    result.medium_total.unreachable += run.medium.unreachable;
    result.medium_total.hidden_terminal += run.medium.hidden_terminal;
  }
  return result;
}

}  // namespace turq::service
