// Configuration and per-repetition summary of the consensus service layer.
//
// Plain structs only: harness/experiment.hpp embeds ServiceConfig in
// ScenarioConfig and RepSummary in RunResult, while the service *driver*
// (service.hpp) links against the harness — keeping this header free of
// heavy includes breaks the would-be dependency cycle.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace turq::service {

/// Client arrival process of the open-loop workload generator.
enum class Arrival : std::uint8_t {
  kPoisson,  ///< exponential inter-arrival gaps at `offered_load`
  /// Markov-modulated Poisson: exponential dwell in a base state and a
  /// `burst_factor`-times-hotter burst state, normalized so the long-run
  /// mean rate is still `offered_load`.
  kBursty,
};

const char* to_string(Arrival a);

struct ServiceConfig {
  /// Off by default: every existing scenario runs the single-instance
  /// harness byte-identically with the service layer compiled in.
  bool enabled = false;

  /// W — consensus instances in flight at once (the pipeline window).
  std::uint32_t pipeline_depth = 8;
  /// B — client requests admitted per instance slot (proposal batching).
  std::uint32_t batch = 8;

  Arrival arrival = Arrival::kPoisson;
  /// Mean offered load, client requests per *simulated* second.
  double offered_load = 2000.0;
  /// Requests generated per repetition; the run ends when all of them
  /// committed (or cfg.run_timeout expires).
  std::uint64_t total_requests = 512;
  /// Admission bound of the replicated queue: arrivals beyond it are
  /// rejected (counted, not queued) — open-loop backpressure.
  std::uint64_t queue_capacity = 1 << 20;

  /// Coalescing window of the per-node frame mux (net/frame_mux.hpp).
  SimDuration mux_window = 2 * kMillisecond;

  /// OTS chain length per instance. Instances decide in a handful of
  /// phases, so the single-run default (512) would waste almost the whole
  /// chain; must be a multiple of 3 so every chain ends on a DECIDE phase.
  std::uint32_t phases_per_instance = 48;
  /// Instances keyed per trusted-setup pass (KeyInfrastructure::
  /// setup_batch); 0 = pipeline_depth.
  std::uint32_t key_batch = 0;

  // Bursty arrivals (Arrival::kBursty).
  double burst_factor = 8.0;              ///< burst-state rate multiplier
  double burst_fraction = 0.125;          ///< long-run fraction of time bursting
  SimDuration burst_dwell = 250 * kMillisecond;  ///< mean burst episode length

  [[nodiscard]] std::uint32_t effective_key_batch() const {
    return key_batch != 0 ? key_batch : pipeline_depth;
  }
};

/// Per-repetition service outcome (RunResult::service). Request latencies
/// ride in RunResult::latencies_ms (arrival -> commit, one per committed
/// request) so the existing pooling/percentile machinery applies untouched.
struct RepSummary {
  std::uint64_t arrivals = 0;            // requests the generator produced
  std::uint64_t committed = 0;           // requests decided by >= k processes
  std::uint64_t rejected = 0;            // backpressure drops (queue full)
  std::uint64_t instances_launched = 0;
  std::uint64_t instances_decided = 0;   // all n processes decided
  std::uint64_t instances_failed = 0;    // still undecided at the deadline
  std::uint64_t key_batches = 0;         // trusted-setup passes
  /// Instance-grained audit tallies (the per-violation detail rides in
  /// RunResult::audit, whose report merges every instance's).
  std::uint64_t audit_checked_instances = 0;
  std::uint64_t audit_violating_instances = 0;
  SimTime finished_at = 0;               // sim time when the rep wound down
  // Mux totals summed over the n per-node fabrics.
  std::uint64_t mux_frames = 0;
  std::uint64_t mux_payloads = 0;
  std::uint64_t mux_splits = 0;
  std::uint64_t mux_late_drops = 0;
  std::uint64_t mux_superseded = 0;
};

}  // namespace turq::service
