// Multi-instance consensus service: a replicated queue (SMR-lite) over
// pipelined Turquois instances, under an open-loop client workload.
//
// The paper's shape is one binary consensus per run; a service's shape is a
// stream of client requests, each committed by one slot of a replicated
// queue. This driver runs W instances in flight (ScenarioConfig::service),
// each deciding the admission of a batch of B requests, over the existing
// simulated medium/fault stack. Three amortizations make the pipeline pay
// (DESIGN.md §15):
//   * frame multiplexing — per node, one FrameMux packs the pending
//     payloads of all in-flight instances into shared broadcast frames
//     (net/frame_mux.hpp), so airtime/DIFS/backoff and datagram overhead
//     are paid once per window, not once per instance;
//   * batched trusted setup — KeyInfrastructure::setup_batch keys a whole
//     instance batch with one RNG pass, one 8-way SHA-256 sweep, and one
//     RSA pair per process;
//   * proposal batching — B requests per instance slot, so one decision
//     commits B requests.
// Every instance is judged by its own ConsensusAuditor (Validity /
// Agreement / Unanimity per instance id): throughput never buys silent
// incorrectness. A request's end-to-end latency is stamped arrival ->
// commit (the k-th process decide of its instance).
//
// Repetitions run through harness::run_repetitions — the same scheduler,
// per-repetition trace capture, and crash isolation as run_scenario — so
// pooled output is bit-identical at any --jobs × --intra-jobs.
#pragma once

#include <optional>
#include <string>

#include "harness/experiment.hpp"
#include "service/config.hpp"

namespace turq::service {

/// Pooled outcome of a service scenario (the analogue of ScenarioResult).
struct ServiceScenarioResult {
  harness::ScenarioConfig config;
  /// Per-request arrival->commit latencies pooled over all repetitions, in
  /// repetition order.
  SampleStats latency_ms;
  std::uint32_t failed_runs = 0;        // crashed or incomplete repetitions
  std::uint32_t safety_violations = 0;  // reps with a violating instance
  net::MediumStats medium_total;
  /// Instance-grained audit: checked_reps counts audited *instances*.
  std::optional<audit::AuditAggregate> audit;
  /// Counter totals summed over repetitions (finished_at sums to the total
  /// simulated seconds, the denominator of the throughput figures).
  RepSummary totals;
  std::uint64_t app_messages = 0;

  /// Committed requests per simulated second, pooled over repetitions — a
  /// machine-independent throughput figure.
  [[nodiscard]] double committed_per_sim_sec() const;
  /// Fully decided instances per simulated second.
  [[nodiscard]] double instances_per_sim_sec() const;
};

/// Arrival->commit latency in ms under half-open interval semantics: the
/// request occupies [arrival, commit), and a commit landing in the same
/// simulator instant as the arrival still charges one simulator quantum
/// (1 ns) instead of a literal zero. Zero samples would poison the min/p50
/// columns and make per-request rate math divide by zero; `commit` must
/// not precede `arrival` (asserted).
[[nodiscard]] double commit_latency_ms(SimTime arrival, SimTime commit);

/// Service-specific validation on top of harness::validate (which
/// run_service also applies). std::nullopt = runnable.
[[nodiscard]] std::optional<std::string> validate_service(
    const harness::ScenarioConfig& cfg);

/// One service repetition; pure in (cfg, rep_index), tracer-wrapped like
/// harness::run_once. RunResult::service is set; latencies_ms holds
/// per-request latencies.
[[nodiscard]] harness::RunResult run_service_once(
    const harness::ScenarioConfig& cfg, std::uint64_t rep_index);

/// Runs cfg.repetitions service repetitions (cfg.service.enabled must be
/// set) and pools in repetition order. Throws std::invalid_argument when
/// validate()/validate_service() reports a problem.
[[nodiscard]] ServiceScenarioResult run_service(
    const harness::ScenarioConfig& cfg);

}  // namespace turq::service
