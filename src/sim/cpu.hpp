// Per-node virtual CPU.
//
// Serializes modeled computation (crypto, message processing) on each node:
// work submitted while the CPU is busy queues behind the in-flight work.
// This is how production-size crypto costs (see crypto::CostModel) become
// visible in simulated latency even though the toy implementations are fast
// in wall-clock terms.
#pragma once

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace turq::sim {

class VirtualCpu {
 public:
  explicit VirtualCpu(Simulator& simulator) : sim_(simulator) {}

  /// Charges `duration` of compute and invokes `done` when it completes.
  /// Work is serialized: it starts when all previously submitted work ends.
  void execute(SimDuration duration, Simulator::Callback done);

  /// Charges `duration` with no completion callback (accounting only).
  void charge(SimDuration duration);

  /// Time at which the CPU becomes free given current commitments.
  [[nodiscard]] SimTime free_at() const;

  /// Total compute charged so far (for utilization reporting).
  [[nodiscard]] SimDuration total_busy() const { return total_busy_; }

 private:
  Simulator& sim_;
  SimTime busy_until_ = 0;
  SimDuration total_busy_ = 0;
};

}  // namespace turq::sim
