#include "sim/task_pool.hpp"

#include "common/assert.hpp"

namespace turq::sim {

TaskPool::TaskPool(unsigned workers) {
  TURQ_ASSERT_MSG(workers >= 1, "TaskPool requires at least one worker");
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

unsigned TaskPool::resolve(unsigned intra_jobs) {
  if (intra_jobs != 0) return intra_jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace turq::sim
