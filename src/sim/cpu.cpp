#include "sim/cpu.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace turq::sim {

SimTime VirtualCpu::free_at() const { return std::max(busy_until_, sim_.now()); }

void VirtualCpu::execute(SimDuration duration, Simulator::Callback done) {
  TURQ_ASSERT(duration >= 0);
  const SimTime start = free_at();
  busy_until_ = start + duration;
  total_busy_ += duration;
  sim_.schedule_at(busy_until_, std::move(done));
}

void VirtualCpu::charge(SimDuration duration) {
  TURQ_ASSERT(duration >= 0);
  const SimTime start = free_at();
  busy_until_ = start + duration;
  total_busy_ += duration;
}

}  // namespace turq::sim
