#include "sim/simulator.hpp"

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace turq::sim {

EventId Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  TURQ_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  TURQ_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  handlers_.emplace(id, std::move(fn));
  queue_.push(QueueEntry{.at = at, .id = id});
  ++pending_;
  return id;
}

void Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return;
  handlers_.erase(it);
  --pending_;
  // The queue entry stays; execute_next() skips ids with no handler.
}

bool Simulator::execute_next() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    --pending_;
    now_ = entry.at;
    ++executed_;
#if TURQ_TRACE_ENABLED
    // Per-dispatch events are voluminous; they are only recorded when the
    // installed tracer asked for them.
    if (trace::Tracer* t = trace::current(); t && t->options().sim_events) {
      t->emit(trace::TraceEvent{.at = now_,
                                .category = trace::Category::kSim,
                                .kind = trace::Kind::kSimEvent,
                                .value = static_cast<std::int64_t>(entry.id)});
    }
#endif
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  stopped_ = false;
  bool ran_dry = true;  // exited because no event at or before the deadline
  while (!stopped_ && !queue_.empty()) {
    // Peek: do not execute events past the deadline.
    const QueueEntry entry = queue_.top();
    if (handlers_.find(entry.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.at > deadline) break;
    if (!execute_next()) break;
    ++count;
  }
  ran_dry = !stopped_;
  // Virtual time advances to the deadline whenever we drained everything
  // scheduled up to it — callers polling in wall slices rely on this.
  if (ran_dry && now_ < deadline) now_ = deadline;
  return count;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  stopped_ = false;
  while (!stopped_ && count < max_events && execute_next()) ++count;
  TURQ_ASSERT_MSG(count < max_events, "simulator hit the event safety stop");
  return count;
}

}  // namespace turq::sim
