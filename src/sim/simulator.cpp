#include "sim/simulator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace turq::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  TURQ_ASSERT_MSG(slots_.size() < kNoSlot, "event arena exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // ids must never equal kInvalidEvent
  s.next_free = free_head_;
  free_head_ = slot;
}

bool Simulator::is_live(EventId id) const {
  const std::uint32_t slot = id_slot(id);
  return slot < slots_.size() && slots_[slot].live &&
         slots_[slot].gen == id_gen(id);
}

EventId Simulator::schedule(SimDuration delay, Callback fn) {
  TURQ_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime at, Callback fn) {
  TURQ_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const EventId id = make_id(s.gen, slot);
  heap_.push_back(QueueEntry{.at = at, .seq = ++seq_, .id = id});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++pending_;
  return id;
}

void Simulator::cancel(EventId id) {
  if (!is_live(id)) return;  // already ran, cancelled, or stale generation
  release_slot(id_slot(id));
  --pending_;
  ++dead_;
  // The heap entry stays behind as a tombstone (skipped on pop by the
  // generation check). Compact once tombstones outnumber live entries so
  // cancel-heavy workloads (e.g. per-tick timer rearming) cannot grow the
  // heap beyond 2x the pending count.
  if (dead_ > pending_ && dead_ > 1) compact();
}

void Simulator::compact() {
  std::erase_if(heap_, [this](const QueueEntry& e) { return !is_live(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  dead_ = 0;
}

bool Simulator::execute_next() {
  while (!heap_.empty()) {
    const QueueEntry entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    if (!is_live(entry.id)) {  // tombstone from a cancel
      --dead_;
      continue;
    }
    // Move the callback out and recycle the slot before invoking: the
    // callback may itself schedule events into the slot just released.
    Callback fn = std::move(slots_[id_slot(entry.id)].fn);
    release_slot(id_slot(entry.id));
    --pending_;
    now_ = entry.at;
    ++executed_;
#if TURQ_TRACE_ENABLED
    // Per-dispatch events are voluminous; they are only recorded when the
    // installed tracer asked for them. The insertion sequence is the
    // stable per-event identifier (arena slot ids are recycled).
    if (trace::Tracer* t = trace::current(); t && t->options().sim_events) {
      t->emit(trace::TraceEvent{.at = now_,
                                .category = trace::Category::kSim,
                                .kind = trace::Kind::kSimEvent,
                                .value = static_cast<std::int64_t>(entry.seq)});
    }
#endif
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  stopped_ = false;
  bool ran_dry = true;  // exited because no event at or before the deadline
  while (!stopped_ && !heap_.empty()) {
    // Peek: do not execute events past the deadline.
    const QueueEntry entry = heap_.front();
    if (!is_live(entry.id)) {
      std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
      heap_.pop_back();
      --dead_;
      continue;
    }
    if (entry.at > deadline) break;
    if (!execute_next()) break;
    ++count;
  }
  ran_dry = !stopped_;
  // Virtual time advances to the deadline whenever we drained everything
  // scheduled up to it — callers polling in wall slices rely on this.
  if (ran_dry && now_ < deadline) now_ = deadline;
  return count;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  stopped_ = false;
  while (!stopped_ && count < max_events && execute_next()) ++count;
  TURQ_ASSERT_MSG(count < max_events, "simulator hit the event safety stop");
  return count;
}

}  // namespace turq::sim
