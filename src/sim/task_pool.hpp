// A minimal fixed-size worker pool for intra-run host-side parallelism.
//
// The simulator's event loop stays single-threaded and deterministic; this
// pool exists so that *pure* host-time work (decoding and batch-verifying a
// broadcast exchange whose bytes are frozen at send time) can run ahead of
// the event that consumes it. Nothing scheduled here may touch simulation
// state — submitted tasks compute values that are pure functions of their
// inputs, and the consuming event blocks on completion, so the observable
// simulation is bit-identical at any worker count. See DESIGN.md §14.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace turq::sim {

class TaskPool {
 public:
  /// Spawns `workers` threads (must be >= 1; callers wanting an inline/no-
  /// pool configuration simply don't construct one).
  explicit TaskPool(unsigned workers);

  /// Joins after draining the queue; queued tasks all run.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `fn` for execution on some worker, FIFO.
  void submit(std::function<void()> fn);

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Maps an --intra-jobs request to a worker count: 0 = auto-detect from
  /// hardware_concurrency, otherwise the request itself. A result of 1
  /// means "run inline, construct no pool".
  [[nodiscard]] static unsigned resolve(unsigned intra_jobs);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace turq::sim
