// Deterministic discrete-event simulator.
//
// Single-threaded virtual-time event loop: events execute in (time, insertion
// sequence) order, so runs are exactly reproducible. All protocol stacks,
// the radio medium, and the virtual CPUs schedule through this class.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace turq::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Returns a cancellable handle.
  EventId schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `deadline` is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until the queue drains (bounded by `max_events` as a safety stop).
  std::size_t run(std::size_t max_events = 100'000'000);

  /// Requests the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool idle() const { return pending_ == 0; }
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

 private:
  struct QueueEntry {
    SimTime at;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  bool execute_next();  // returns false when queue is empty

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t pending_ = 0;
  std::size_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace turq::sim
