// Deterministic discrete-event simulator.
//
// Single-threaded virtual-time event loop: events execute in (time, insertion
// sequence) order, so runs are exactly reproducible. All protocol stacks,
// the radio medium, and the virtual CPUs schedule through this class.
//
// Storage is a pooled event-slot arena: each pending event lives in a
// recycled Slot (callback + generation tag), addressed by a free-list.
// EventId packs (generation << 32) | slot, so cancel() is an O(1) array
// probe — a stale id simply fails the generation check — instead of a hash
// map erase. The ready queue is a binary heap of (time, seq) keys over slot
// ids; cancelled entries become tombstones that are skipped on pop and
// compacted away whenever they outnumber the live entries, which bounds the
// queue at 2x the pending-event count. In steady state (slots and heap
// capacity warmed up, captures within InlineFunction's inline buffer)
// schedule/cancel/execute perform zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.hpp"
#include "common/types.hpp"

namespace turq::sim {

/// Handle for cancelling a scheduled event: (generation << 32) | slot.
/// Generations start at 1, so no valid handle equals kInvalidEvent.
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  /// Event callback. Move-only; captures up to InlineFunction::kInlineSize
  /// bytes are stored without heap allocation.
  using Callback = InlineFunction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Returns a cancellable handle.
  EventId schedule(SimDuration delay, Callback fn);

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Callback fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled
  /// (the generation tag in the id rejects stale handles).
  void cancel(EventId id);

  /// Runs events until the queue is empty or `deadline` is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until the queue drains (bounded by `max_events` as a safety stop).
  std::size_t run(std::size_t max_events = 100'000'000);

  /// Requests the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool idle() const { return pending_ == 0; }

  /// Live (not cancelled, not yet executed) events.
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

  /// Number of heap entries currently held, live + tombstones. Compaction
  /// keeps this <= 2 * pending events + 1 (observable in tests).
  [[nodiscard]] std::size_t queue_entries() const { return heap_.size(); }
  /// Cancelled entries still awaiting skip-on-pop or compaction.
  [[nodiscard]] std::size_t queue_tombstones() const { return dead_; }
  /// Slots in the arena (high-water mark of concurrently pending events).
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;        // bumped on every release; never 0
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  struct QueueEntry {
    SimTime at;
    std::uint64_t seq;  // insertion order: FIFO among simultaneous events
    EventId id;
  };

  /// Min-heap comparator (std::push_heap builds a max-heap, so "greater").
  struct EntryAfter {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static constexpr std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// True when `id` names the live event its generation was minted for.
  [[nodiscard]] bool is_live(EventId id) const;
  /// Drops every tombstone from the heap and restores the heap property.
  /// Safe because pop order is a strict total order on (at, seq).
  void compact();

  bool execute_next();  // returns false when queue is empty

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;  // pre-incremented: first event gets seq 1
  std::size_t pending_ = 0;
  std::size_t executed_ = 0;
  std::size_t dead_ = 0;  // tombstones currently in heap_
  bool stopped_ = false;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<Slot> slots_;
  std::vector<QueueEntry> heap_;
};

}  // namespace turq::sim
