// Run-time consensus-property auditor.
//
// A ConsensusAuditor observes one repetition of any protocol (Turquois,
// Bracha, ABBA) through the existing propose/phase/decide hooks and checks
// the paper's correctness claims (§5, Theorems 1-3) against what actually
// happened:
//
//   * Validity            — every decided value was proposed by a correct
//                           process (Theorem 1);
//   * Agreement           — no two correct processes decide differently
//                           (Theorem 2);
//   * Unanimity           — when every correct process proposes the same
//                           value, that value is the only possible decision
//                           (the Validity corollary the unanimous load
//                           exercises);
//   * Phase monotonicity  — a correct process's phase/round never moves
//                           backwards (Algorithm 1 only advances φ);
//   * Quorum sanity       — per-process decision evidence holds up
//                           (protocol-specific checks are injected via
//                           note_violation, e.g. the harness scans a
//                           Turquois view for the decide-phase quorum);
//   * σ-conditioned liveness — a repetition that stayed inside the σ
//                           omission budget every round (PR 4's
//                           SigmaAccountant says it is liveness-eligible)
//                           must decide within the configured phase bound
//                           and before the deadline (Theorem 3).
//
// The auditor is purely observational: it consumes no randomness, sends no
// messages and never touches protocol state, so enabling it cannot perturb
// a run (the determinism contract of DESIGN.md §10 is preserved bit for
// bit). Violations are collected into an AuditReport; the harness folds
// reports into an AuditAggregate per scenario, emits them as the "audit"
// object of turquois-bench/1 reports and as audit.* trace counters, and the
// CLIs fail the run loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "faultplan/plan.hpp"

namespace turq::audit {

/// The audited properties, in report order. Keep kPropertyCount in sync.
enum class Property : std::uint8_t {
  kValidity = 0,
  kAgreement,
  kUnanimity,
  kPhaseMonotonicity,
  kQuorumSanity,
  kSigmaLiveness,
};

inline constexpr std::size_t kPropertyCount = 6;

/// Stable snake_case name, used as JSON key and trace-counter suffix.
[[nodiscard]] const char* to_string(Property p);

/// Sentinel for violations not attributable to a single process.
inline constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

struct Violation {
  Property property = Property::kValidity;
  /// Offending process, or kNoProcess for run-level violations.
  ProcessId process = kNoProcess;
  std::string detail;

  bool operator==(const Violation&) const = default;
};

/// The outcome of auditing one repetition.
struct AuditReport {
  /// finish() ran; distinguishes "audited and clean" from "not audited".
  bool checked = false;
  std::vector<Violation> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
  [[nodiscard]] std::uint64_t count(Property p) const;
  /// One line per violation ("property p<id>: detail"), for CLI output.
  [[nodiscard]] std::string describe() const;
};

struct AuditConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t k = 3;
  /// Decide-phase ceiling for σ-conditioned liveness: a liveness-eligible
  /// repetition in which a correct process decides at a phase above this
  /// bound is flagged. 0 = no phase ceiling (only the run deadline, i.e.
  /// every correct process must decide before the repetition times out).
  std::uint64_t phase_bound = 0;
};

/// Observes one repetition. Feed the per-process hooks as the run executes,
/// then call finish() exactly once after the run completes.
class ConsensusAuditor {
 public:
  explicit ConsensusAuditor(AuditConfig cfg) : cfg_(cfg) {}

  /// A correct process proposed `v` at time `at`.
  void on_propose(ProcessId p, Value v, SimTime at);
  /// A correct process entered phase/round `phase`.
  void on_phase(ProcessId p, std::uint64_t phase, SimTime at);
  /// A correct process decided `v` at phase/round `phase`.
  void on_decide(ProcessId p, Value v, std::uint64_t phase, SimTime at);
  /// Records a violation found by an external, protocol-specific check
  /// (e.g. the harness's Turquois decide-quorum view scan).
  void note_violation(Property prop, ProcessId p, std::string detail);

  /// Closes the repetition: runs the whole-run checks (validity, unanimity,
  /// σ-conditioned liveness) and returns the report. `sigma` is the
  /// repetition's σ accounting when the fault plan tracked it;
  /// `all_correct_decided` is the harness's deadline verdict.
  [[nodiscard]] AuditReport finish(
      const std::optional<faultplan::SigmaSummary>& sigma,
      bool all_correct_decided);

  [[nodiscard]] const AuditConfig& config() const { return cfg_; }

 private:
  struct ProcessLog {
    std::optional<Value> proposal;
    std::uint64_t last_phase = 0;
    std::optional<Value> decision;
    std::uint64_t decide_phase = 0;
    std::uint32_t decide_events = 0;
  };

  void violate(Property prop, ProcessId p, std::string detail);

  AuditConfig cfg_;
  // std::map: deterministic iteration order -> deterministic report bytes.
  std::map<ProcessId, ProcessLog> procs_;
  std::vector<Violation> violations_;
};

/// Audit outcomes pooled over a scenario's repetitions — the "audit" object
/// of turquois-bench/1 report cells.
struct AuditAggregate {
  std::uint64_t checked_reps = 0;
  std::uint64_t violating_reps = 0;
  std::uint64_t violations = 0;
  std::uint64_t by_property[kPropertyCount] = {};

  void merge(const AuditReport& report);
  [[nodiscard]] bool passed() const { return violations == 0; }

  bool operator==(const AuditAggregate&) const = default;
};

}  // namespace turq::audit
