#include "audit/audit.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace turq::audit {

const char* to_string(Property p) {
  switch (p) {
    case Property::kValidity: return "validity";
    case Property::kAgreement: return "agreement";
    case Property::kUnanimity: return "unanimity";
    case Property::kPhaseMonotonicity: return "phase_monotonicity";
    case Property::kQuorumSanity: return "quorum_sanity";
    case Property::kSigmaLiveness: return "sigma_liveness";
  }
  return "?";
}

std::uint64_t AuditReport::count(Property p) const {
  return static_cast<std::uint64_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const Violation& v) { return v.property == p; }));
}

std::string AuditReport::describe() const {
  std::string out;
  for (const Violation& v : violations) {
    out += "  ";
    out += to_string(v.property);
    if (v.process != kNoProcess) {
      out += " p" + std::to_string(v.process);
    }
    out += ": " + v.detail + "\n";
  }
  return out;
}

void ConsensusAuditor::violate(Property prop, ProcessId p,
                               std::string detail) {
  violations_.push_back(Violation{prop, p, std::move(detail)});
}

void ConsensusAuditor::on_propose(ProcessId p, Value v, SimTime at) {
  (void)at;
  ProcessLog& log = procs_[p];
  if (log.proposal.has_value()) {
    violate(Property::kQuorumSanity, p, "proposed twice");
    return;
  }
  if (!is_binary(v)) {
    violate(Property::kQuorumSanity, p,
            "proposed the non-binary value " + turq::to_string(v));
  }
  log.proposal = v;
}

void ConsensusAuditor::on_phase(ProcessId p, std::uint64_t phase,
                                SimTime at) {
  (void)at;
  ProcessLog& log = procs_[p];
  if (phase < log.last_phase) {
    violate(Property::kPhaseMonotonicity, p,
            "phase moved backwards: " + std::to_string(log.last_phase) +
                " -> " + std::to_string(phase));
  }
  log.last_phase = std::max(log.last_phase, phase);
}

void ConsensusAuditor::on_decide(ProcessId p, Value v, std::uint64_t phase,
                                 SimTime at) {
  (void)at;
  ProcessLog& log = procs_[p];
  ++log.decide_events;
  if (log.decide_events > 1) {
    violate(Property::kQuorumSanity, p, "decided more than once");
    return;
  }
  if (!is_binary(v)) {
    violate(Property::kQuorumSanity, p,
            "decided the non-binary value " + turq::to_string(v));
  }
  // Agreement against every earlier decision (first mismatch per process).
  for (const auto& [other, other_log] : procs_) {
    if (other == p || !other_log.decision.has_value()) continue;
    if (*other_log.decision != v) {
      violate(Property::kAgreement, p,
              "decided " + turq::to_string(v) + " but p" +
                  std::to_string(other) + " decided " +
                  turq::to_string(*other_log.decision));
      break;
    }
  }
  log.decision = v;
  log.decide_phase = phase;
  log.last_phase = std::max(log.last_phase, phase);
}

void ConsensusAuditor::note_violation(Property prop, ProcessId p,
                                      std::string detail) {
  violate(prop, p, std::move(detail));
}

AuditReport ConsensusAuditor::finish(
    const std::optional<faultplan::SigmaSummary>& sigma,
    bool all_correct_decided) {
  // Validity: a decided value must be some correct process's proposal.
  for (const auto& [p, log] : procs_) {
    if (!log.decision.has_value()) continue;
    const bool proposed_by_correct = std::any_of(
        procs_.begin(), procs_.end(), [&](const auto& entry) {
          return entry.second.proposal.has_value() &&
                 *entry.second.proposal == *log.decision;
        });
    if (!proposed_by_correct) {
      violate(Property::kValidity, p,
              "decided " + turq::to_string(*log.decision) +
                  ", which no correct process proposed");
    }
  }

  // Unanimity: all-same proposals admit only that value as decision.
  std::optional<Value> common;
  bool unanimous = true;
  bool any_proposal = false;
  for (const auto& [p, log] : procs_) {
    (void)p;
    if (!log.proposal.has_value()) continue;
    any_proposal = true;
    if (!common.has_value()) {
      common = *log.proposal;
    } else if (*common != *log.proposal) {
      unanimous = false;
    }
  }
  if (any_proposal && unanimous) {
    for (const auto& [p, log] : procs_) {
      if (log.decision.has_value() && *log.decision != *common) {
        violate(Property::kUnanimity, p,
                "unanimous proposal " + turq::to_string(*common) +
                    " but decided " + turq::to_string(*log.decision));
      }
    }
  }

  // σ-conditioned liveness: a repetition whose every round stayed inside
  // the σ omission budget must reach the decision (Theorem 3). Runs with
  // violating rounds carry no liveness obligation.
  if (sigma.has_value() && sigma->liveness_eligible()) {
    if (!all_correct_decided) {
      violate(Property::kSigmaLiveness, kNoProcess,
              "liveness-eligible repetition (0 sigma-violating rounds) "
              "missed the decision deadline");
    }
    if (cfg_.phase_bound > 0) {
      for (const auto& [p, log] : procs_) {
        if (log.decision.has_value() && log.decide_phase > cfg_.phase_bound) {
          violate(Property::kSigmaLiveness, p,
                  "decided at phase " + std::to_string(log.decide_phase) +
                      " above the configured bound " +
                      std::to_string(cfg_.phase_bound));
        }
      }
    }
  }

  AuditReport report;
  report.checked = true;
  report.violations = std::move(violations_);
  violations_.clear();
  return report;
}

void AuditAggregate::merge(const AuditReport& report) {
  if (!report.checked) return;
  ++checked_reps;
  if (!report.passed()) ++violating_reps;
  violations += report.violations.size();
  for (const Violation& v : report.violations) {
    ++by_property[static_cast<std::size_t>(v.property)];
  }
}

}  // namespace turq::audit
