// Byzantine attack strategies from the paper's evaluation (§7.2).
//
// Turquois / Bracha: in (cycle) phases 1 and 2 a Byzantine process proposes
// the opposite of the value it would propose if correct; in phase 3 it
// proposes the default value ⊥ — "even if messages are potentially
// considered invalid". For ABBA, Byzantine processes instead transmit
// messages with invalid signatures and justifications to burn verification
// cycles at correct processes (strategies are enums inside each baseline).
//
// The harness applies these via the fault plan's role: a plan with
// Role::kByzantine (e.g. the canned "Byzantine" plan behind the registry's
// "byzantine" name) designates the top f process ids as faulty
// and installs the per-protocol strategy below on each — see
// src/faultplan/plan.hpp and harness::ScenarioConfig::plan.
#pragma once

#include "turquois/process.hpp"

namespace turq::adversary {

/// The §7.2 strategy for Turquois, as a Process outgoing-message mutator.
/// CONVERGE/LOCK-phase broadcasts flip the value; DECIDE-phase broadcasts
/// carry ⊥. The mutated message is re-signed by the process afterwards
/// (Byzantine nodes are insiders holding real one-time keys).
inline turquois::Process::Mutator turquois_value_inversion() {
  return [](turquois::Message& m) {
    if (m.phase % 3 == 0) {
      m.value = Value::kBottom;
    } else if (is_binary(m.value)) {
      m.value = opposite(m.value);
    }
  };
}

/// Insider forgery of the unsigned header bits: on CONVERGE-phase broadcasts
/// past the first cycle, stamp status = decided and from_coin = true while
/// keeping the (signed) phase/value pair intact. Neither flag is covered by
/// the one-time signature, so a Byzantine insider can attach them to an
/// otherwise-honest message. Against the pre-fix adopt() rule this made a
/// lagging correct process coin-flip a *decided* message it jumped to and
/// then decide the coin's output — an agreement violation with probability
/// 1/2 per adoption (found by turquois_fuzz; fixed in process.cpp adopt()).
inline turquois::Process::Mutator turquois_decided_coin_forge() {
  return [](turquois::Message& m) {
    if (m.phase % 3 == 1 && m.phase > 3 && is_binary(m.value)) {
      m.status = Status::kDecided;
      m.from_coin = true;
    }
  };
}

}  // namespace turq::adversary
