// Byzantine attack strategies from the paper's evaluation (§7.2).
//
// Turquois / Bracha: in (cycle) phases 1 and 2 a Byzantine process proposes
// the opposite of the value it would propose if correct; in phase 3 it
// proposes the default value ⊥ — "even if messages are potentially
// considered invalid". For ABBA, Byzantine processes instead transmit
// messages with invalid signatures and justifications to burn verification
// cycles at correct processes (strategies are enums inside each baseline).
//
// The harness applies these via the fault plan's role: a plan with
// Role::kByzantine (e.g. the canned "Byzantine" plan behind the deprecated
// FaultLoad::kByzantine alias) designates the top f process ids as faulty
// and installs the per-protocol strategy below on each — see
// src/faultplan/plan.hpp and harness::ScenarioConfig::plan.
#pragma once

#include "turquois/process.hpp"

namespace turq::adversary {

/// The §7.2 strategy for Turquois, as a Process outgoing-message mutator.
/// CONVERGE/LOCK-phase broadcasts flip the value; DECIDE-phase broadcasts
/// carry ⊥. The mutated message is re-signed by the process afterwards
/// (Byzantine nodes are insiders holding real one-time keys).
inline turquois::Process::Mutator turquois_value_inversion() {
  return [](turquois::Message& m) {
    if (m.phase % 3 == 0) {
      m.value = Value::kBottom;
    } else if (is_binary(m.value)) {
      m.value = opposite(m.value);
    }
  };
}

}  // namespace turq::adversary
