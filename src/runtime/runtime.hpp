// The narrow execution surface a consensus process needs from its host.
//
// Turquois (and the Bracha/ABBA baselines) consume exactly five services
// from whatever runs them: a monotonic clock, cancellable one-shot timers,
// a derived-stream RNG, and two flavours of crypto-cost accounting (charge
// for fire-and-forget work, execute for work whose completion gates the
// next protocol step). Datagram I/O stays behind net::DatagramPort, which
// already abstracts the medium. Everything else — the event loop, threads,
// sockets, virtual CPUs — is the runtime's business.
//
// Two implementations exist:
//   runtime::SimRuntime — a 1:1 adapter over sim::Simulator + sim::VirtualCpu.
//     Event ordering, timer ids, and RNG draws are exactly those of the
//     direct simulator path, so every golden and BENCH JSON stays
//     byte-identical through this indirection.
//   runtime::UdpRuntime — a real-time epoll loop over UDP sockets
//     (udp_runtime.hpp). Timers fire on the monotonic wall clock; crypto
//     costs are a no-op by default (the real crypto work is the cost).
//
// The same protocol translation units link against either; tools/
// turquois_node runs one process per OS process on real sockets while the
// deterministic harnesses keep their bit-exact replays.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace turq::runtime {

/// Handle for cancelling a scheduled timer. Shares the representation of
/// sim::EventId so the sim adapter forwards handles untranslated.
using TimerId = std::uint64_t;

constexpr TimerId kInvalidTimer = 0;

class Runtime {
 public:
  /// Timer/completion callback. Move-only, small-buffer — identical to
  /// sim::Simulator::Callback so protocol lambdas cross unchanged.
  using Callback = InlineFunction;

  virtual ~Runtime() = default;

  /// Monotonic time in nanoseconds. In the sim this is virtual time; on a
  /// real runtime it is CLOCK_MONOTONIC anchored at runtime construction.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules `fn` to run once, `delay` from now. Returns a cancellable
  /// handle; handles are never reused while the timer is pending.
  virtual TimerId schedule(SimDuration delay, Callback fn) = 0;

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  virtual void cancel(TimerId id) = 0;

  /// Accounts `duration` of modeled compute with no completion callback.
  /// The sim charges the node's VirtualCpu; real runtimes may sleep or
  /// (default) do nothing — the genuine computation already took its time.
  virtual void charge(SimDuration duration) = 0;

  /// Accounts `duration` of modeled compute and invokes `done` when it
  /// completes. Work is serialized per process, matching VirtualCpu.
  virtual void execute(SimDuration duration, Callback done) = 0;

  /// An independent RNG stream for (tag, index). Deterministic runtimes
  /// derive from a seeded root; real-time runtimes may derive from entropy.
  [[nodiscard]] virtual Rng derive_rng(std::string_view tag,
                                       std::uint64_t index) const = 0;
};

}  // namespace turq::runtime
