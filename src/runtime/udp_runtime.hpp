// Real-time runtime: epoll-driven timers and UDP broadcast on localhost/LAN.
//
// One UdpRuntime hosts an epoll loop, a monotonic clock anchored at
// construction, a timer heap, and any number of UdpPorts — each a bound,
// non-blocking UDP socket implementing net::DatagramPort. send() fans a
// framed payload out to every configured peer *including the sender's own
// address*, mirroring the simulator's BroadcastEndpoint loopback semantics
// (a process hears its own broadcasts, asynchronously, via the socket).
//
// The loop is single-threaded: timers and datagram handlers run inline on
// the thread that calls run(), so protocol code needs no locking — the same
// concurrency model as the deterministic simulator.
//
// Crypto-cost charging is a policy: kNone (default) treats charge() as a
// no-op and runs execute() completions synchronously — on real hardware the
// genuine computation already took its time; kSleep burns the modeled cost
// in wall-clock nanosleep before completing, for experiments that want
// production-size crypto latency on toy primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "net/datagram_port.hpp"
#include "runtime/runtime.hpp"

namespace turq::runtime {

/// A (host, port) UDP destination. Host is a dotted-quad IPv4 literal
/// ("127.0.0.1", "192.168.1.17") or "255.255.255.255" for LAN broadcast.
struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpRuntime final : public Runtime {
 public:
  enum class ChargePolicy {
    kNone,   // charge() no-op; execute() completes synchronously
    kSleep,  // burn the modeled duration in wall-clock sleep
  };

  /// `rng_seed` roots derive_rng so a node's jitter/coin streams are
  /// reproducible across runs given the same seed and message timing.
  explicit UdpRuntime(std::uint64_t rng_seed = 0xC0FFEE,
                      ChargePolicy policy = ChargePolicy::kNone);
  ~UdpRuntime() override;

  UdpRuntime(const UdpRuntime&) = delete;
  UdpRuntime& operator=(const UdpRuntime&) = delete;

  // --- Runtime ---
  [[nodiscard]] SimTime now() const override;
  TimerId schedule(SimDuration delay, Callback fn) override;
  void cancel(TimerId id) override;
  void charge(SimDuration duration) override;
  void execute(SimDuration duration, Callback done) override;
  [[nodiscard]] Rng derive_rng(std::string_view tag,
                               std::uint64_t index) const override;

  // --- Sockets ---

  /// A bound UDP socket presented as the protocol's DatagramPort.
  /// Constructed via UdpRuntime::open_port; owned by the runtime.
  class UdpPort final : public net::DatagramPort {
   public:
    void set_handler(net::DatagramHandler handler) override;
    void send(Bytes payload) override;
    void close() override;

    /// The locally bound port (resolves 0 = ephemeral after binding).
    [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
    [[nodiscard]] bool closed() const { return fd_ < 0; }

   private:
    friend class UdpRuntime;
    UdpPort(UdpRuntime& rt, ProcessId self, int fd, std::uint16_t port,
            bool broadcast)
        : rt_(rt), self_(self), fd_(fd), local_port_(port),
          broadcast_(broadcast) {}

    UdpRuntime& rt_;
    ProcessId self_;
    int fd_ = -1;
    std::uint16_t local_port_ = 0;
    bool broadcast_ = false;  // SO_BROADCAST was enabled at bind time
    net::DatagramHandler handler_;
  };

  /// Binds a UDP socket on `bind_port` (0 = ephemeral; read back via
  /// local_port()) and registers it with the epoll loop. `self` stamps the
  /// sender id into every outgoing frame. Aborts on socket errors — a node
  /// that cannot bind has nothing useful to do.
  UdpPort& open_port(ProcessId self, std::uint16_t bind_port);

  /// The broadcast fan-out targets, shared by every port on this runtime.
  /// Include each node's own address — self-delivery is part of the
  /// DatagramPort contract. May be (re)set after ports are bound, which is
  /// how ephemeral-port meshes bootstrap.
  void set_peers(std::vector<UdpEndpoint> peers);

  // --- Loop ---

  /// Runs timers and socket I/O until `done` returns true (checked between
  /// events), stop() is called, or `max_wait` elapses (<= 0: no limit).
  void run(const std::function<bool()>& done, SimDuration max_wait = 0);

  /// Requests run() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t timers_pending() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }
  /// Drain invocations that read at least one datagram. A multi-datagram
  /// burst landing between polls counts once: received_ grows by the burst
  /// size while this grows by one (the drain-until-EAGAIN regression
  /// contract, tests/runtime_test.cpp).
  [[nodiscard]] std::uint64_t socket_wakeups() const { return wakeups_; }

 private:
  struct TimerEntry {
    SimTime at;
    std::uint64_t seq;
    TimerId id;
  };
  struct EntryAfter {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Fires every timer due at `t`; returns ns until the next pending timer
  /// (or -1 when none are pending).
  SimDuration fire_due_timers(SimTime t);
  void drain_socket(UdpPort& port);

  int epoll_fd_ = -1;
  SimTime epoch_ = 0;  // CLOCK_MONOTONIC at construction, ns
  ChargePolicy policy_;
  Rng rng_root_;
  bool stopped_ = false;

  std::uint64_t next_timer_ = 1;
  std::uint64_t timer_seq_ = 0;
  std::vector<TimerEntry> heap_;  // lazy deletion: ids absent from the map
  std::unordered_map<TimerId, Callback> callbacks_;

  std::vector<std::unique_ptr<UdpPort>> ports_;
  std::vector<UdpEndpoint> peers_;
  std::uint64_t received_ = 0;
  std::uint64_t wakeups_ = 0;
};

}  // namespace turq::runtime
