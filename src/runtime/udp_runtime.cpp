#include "runtime/udp_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace turq::runtime {

namespace {

/// Frame header on the wire: magic 'T''Q', version, sender id. Filters
/// stray datagrams (port scans, leftovers from earlier runs) cheaply.
constexpr std::uint8_t kMagic0 = 'T';
constexpr std::uint8_t kMagic1 = 'Q';
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4;

SimTime monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

sockaddr_in to_sockaddr(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const int rc = inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr);
  TURQ_ASSERT_MSG(rc == 1, "peer host must be an IPv4 literal");
  return addr;
}

}  // namespace

UdpRuntime::UdpRuntime(std::uint64_t rng_seed, ChargePolicy policy)
    : policy_(policy), rng_root_(rng_seed) {
  epoll_fd_ = epoll_create1(0);
  TURQ_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  epoch_ = monotonic_ns();
}

UdpRuntime::~UdpRuntime() {
  for (auto& port : ports_) port->close();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime UdpRuntime::now() const { return monotonic_ns() - epoch_; }

TimerId UdpRuntime::schedule(SimDuration delay, Callback fn) {
  const TimerId id = next_timer_++;
  callbacks_.emplace(id, std::move(fn));
  heap_.push_back({now() + std::max<SimDuration>(delay, 0), ++timer_seq_, id});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  return id;
}

void UdpRuntime::cancel(TimerId id) {
  // Lazy deletion: the heap entry stays until popped; absence from the
  // callback map marks it dead.
  callbacks_.erase(id);
}

void UdpRuntime::charge(SimDuration duration) {
  if (policy_ == ChargePolicy::kSleep && duration > 0) {
    timespec ts{duration / kSecond, duration % kSecond};
    nanosleep(&ts, nullptr);
  }
}

void UdpRuntime::execute(SimDuration duration, Callback done) {
  // The real computation already happened on this thread; by default the
  // modeled cost is dropped and the continuation runs immediately. This is
  // safe against re-entry: datagrams are only delivered from the epoll
  // loop, never from inside a send.
  charge(duration);
  done();
}

Rng UdpRuntime::derive_rng(std::string_view tag, std::uint64_t index) const {
  return rng_root_.derive(tag, index);
}

SimDuration UdpRuntime::fire_due_timers(SimTime t) {
  while (!heap_.empty()) {
    const TimerEntry top = heap_.front();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {  // cancelled: drop the tombstone
      std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
      heap_.pop_back();
      continue;
    }
    if (top.at > t) return top.at - t;
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    if (stopped_) return -1;
  }
  return -1;
}

void UdpRuntime::run(const std::function<bool()>& done, SimDuration max_wait) {
  stopped_ = false;
  const SimTime deadline = max_wait > 0 ? now() + max_wait : 0;
  epoll_event events[16];
  while (!stopped_) {
    if (done && done()) return;
    SimDuration until_timer = fire_due_timers(now());
    if (stopped_ || (done && done())) return;
    if (deadline != 0 && now() >= deadline) return;

    // Wake for the next timer, and at least every 10 ms to re-check the
    // predicate/deadline even on a silent network.
    SimDuration wait = until_timer < 0 ? 10 * kMillisecond
                                       : std::min<SimDuration>(
                                             until_timer, 10 * kMillisecond);
    if (deadline != 0) {
      wait = std::min<SimDuration>(wait, std::max<SimDuration>(deadline - now(), 0));
    }
    const int timeout_ms =
        static_cast<int>((wait + kMillisecond - 1) / kMillisecond);
    const int ready =
        epoll_wait(epoll_fd_, events, 16, std::max(timeout_ms, 0));
    if (ready < 0) {
      if (errno == EINTR) continue;
      TURQ_ASSERT_MSG(false, "epoll_wait failed");
    }
    for (int i = 0; i < ready && !stopped_; ++i) {
      auto* port = static_cast<UdpPort*>(events[i].data.ptr);
      drain_socket(*port);
    }
  }
}

void UdpRuntime::drain_socket(UdpPort& port) {
  // Drain until EAGAIN: epoll readiness is level-triggered per poll, but a
  // broadcast burst queues many datagrams behind one readiness event —
  // stopping early would delay the rest by a full poll cycle and starve
  // timers. EINTR in particular must not abandon the drain: a signal
  // between datagrams would strand everything still queued.
  std::uint8_t buf[65536];
  bool read_any = false;
  while (port.fd_ >= 0) {
    const ssize_t got = recvfrom(port.fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (got < 0) {
      if (errno == EINTR) continue;  // interrupted mid-drain: keep reading
      break;  // EAGAIN/EWOULDBLOCK (drained) or hard error: drop and carry on
    }
    read_any = true;
    if (got < static_cast<ssize_t>(kHeaderSize)) continue;
    if (buf[0] != kMagic0 || buf[1] != kMagic1 || buf[2] != kVersion) continue;
    const ProcessId src = buf[3];
    ++received_;
    if (port.handler_) {
      port.handler_(src, BytesView{buf + kHeaderSize,
                                   static_cast<std::size_t>(got) - kHeaderSize});
    }
  }
  if (read_any) ++wakeups_;
}

UdpRuntime::UdpPort& UdpRuntime::open_port(ProcessId self,
                                           std::uint16_t bind_port) {
  const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  TURQ_ASSERT_MSG(fd >= 0, "socket() failed");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const bool broadcast =
      setsockopt(fd, SOL_SOCKET, SO_BROADCAST, &one, sizeof(one)) == 0;
  // Consensus bursts at large n can spike past the default socket buffer;
  // ask for more (best effort, capped by net.core.rmem_max).
  const int rcvbuf = 4 * 1024 * 1024;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(bind_port);
  int rc = bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  TURQ_ASSERT_MSG(rc == 0, "bind() failed — port already in use?");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  rc = getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  TURQ_ASSERT_MSG(rc == 0, "getsockname() failed");

  ports_.push_back(std::unique_ptr<UdpPort>(
      new UdpPort(*this, self, fd, ntohs(bound.sin_port), broadcast)));
  UdpPort& port = *ports_.back();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &port;
  rc = epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  TURQ_ASSERT_MSG(rc == 0, "epoll_ctl(ADD) failed");
  return port;
}

void UdpRuntime::set_peers(std::vector<UdpEndpoint> peers) {
  peers_ = std::move(peers);
}

void UdpRuntime::UdpPort::set_handler(net::DatagramHandler handler) {
  handler_ = std::move(handler);
}

void UdpRuntime::UdpPort::send(Bytes payload) {
  if (fd_ < 0) return;
  Bytes frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(kVersion);
  frame.push_back(static_cast<std::uint8_t>(self_));
  frame.insert(frame.end(), payload.begin(), payload.end());
  for (const UdpEndpoint& peer : rt_.peers_) {
    const sockaddr_in addr = to_sockaddr(peer);
    const ssize_t rc =
        sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != ECONNREFUSED) {
      // ECONNREFUSED = peer not up yet (loopback ICMP); ticks retransmit.
      TURQ_WARN("sendto %s:%u failed: %s", peer.host.c_str(), peer.port,
                std::strerror(errno));
    }
  }
}

void UdpRuntime::UdpPort::close() {
  if (fd_ < 0) return;
  epoll_ctl(rt_.epoll_fd_, EPOLL_CTL_DEL, fd_, nullptr);
  ::close(fd_);
  fd_ = -1;
  handler_ = nullptr;
}

}  // namespace turq::runtime
