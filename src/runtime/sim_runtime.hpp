// Deterministic-simulator adapter for runtime::Runtime.
//
// Forwards every verb 1:1 to the wrapped sim::Simulator and sim::VirtualCpu:
// timer handles are the simulator's EventIds verbatim, charge/execute hit
// the node's virtual CPU, and derive_rng forwards to a seeded root stream.
// No verb adds, reorders, or consumes anything, so a protocol stack driven
// through this adapter replays bit-identically to one built on the
// simulator directly — the property the golden/BENCH byte-identity tests
// pin down (tests/runtime_test.cpp).
#pragma once

#include "runtime/runtime.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace turq::runtime {

class SimRuntime final : public Runtime {
 public:
  /// `root` backs derive_rng; harnesses that hand each process its Rng
  /// directly (the common shape) never call derive_rng and may default it.
  SimRuntime(sim::Simulator& simulator, sim::VirtualCpu& cpu, Rng root = Rng{0})
      : sim_(simulator), cpu_(cpu), root_(root) {}

  [[nodiscard]] SimTime now() const override { return sim_.now(); }

  TimerId schedule(SimDuration delay, Callback fn) override {
    return sim_.schedule(delay, std::move(fn));
  }

  void cancel(TimerId id) override { sim_.cancel(id); }

  void charge(SimDuration duration) override { cpu_.charge(duration); }

  void execute(SimDuration duration, Callback done) override {
    cpu_.execute(duration, std::move(done));
  }

  [[nodiscard]] Rng derive_rng(std::string_view tag,
                               std::uint64_t index) const override {
    return root_.derive(tag, index);
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::VirtualCpu& cpu() { return cpu_; }

 private:
  sim::Simulator& sim_;
  sim::VirtualCpu& cpu_;
  Rng root_;
};

}  // namespace turq::runtime
