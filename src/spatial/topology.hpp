// Spatial layer: node placement, unit-disk reachability with optional
// log-distance fading, and random-waypoint mobility.
//
// Topology implements net::SpatialModel and is consulted by the Medium per
// (frame, receiver). Everything here is deterministic in (config, seed):
//   * placement and every waypoint leg come from streams derived from the
//     repetition root (Rng::derive("spatial", 0) in the harness), one
//     stream per node, so motion never perturbs medium or protocol draws;
//   * mobility is lazy and event-free — piecewise-linear segments are
//     advanced on demand as simulated time is queried monotonically, so
//     the simulator's idle() semantics and event ordering are untouched
//     and repetitions stay bit-identical at any --jobs value;
//   * fading draws come from one dedicated stream consumed in medium query
//     order, which is itself deterministic.
//
// Connectivity metrics (partition events, mean path length, carrier-sense
// domains) are sampled at a fixed simulated-time cadence on the same lazy
// advance, over the deterministic unit disk (fading excluded): they
// describe the geometry, not per-frame luck.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/spatial_model.hpp"
#include "trace/metrics.hpp"

namespace turq::spatial {

enum class Placement : std::uint8_t {
  kSingleHop = 0,  // no spatial layer: the legacy everyone-hears-everyone medium
  kGrid,           // square lattice filling the deployment area
  kRing,           // evenly spaced on a circle inscribed in the area
  kRandom,         // uniform iid positions in the area
};

enum class Mobility : std::uint8_t {
  kStatic = 0,
  kWaypoint,  // random waypoint: pick a point, move at a drawn speed, pause
};

constexpr double kInfiniteRadius = std::numeric_limits<double>::infinity();

struct SpatialConfig {
  Placement placement = Placement::kSingleHop;
  double radius_m = kInfiniteRadius;  // radio range; inf = single-hop
  double area_m = 300.0;              // side of the square deployment area
  /// Carrier-sense range = radius_m * cs_factor. Senders within sense
  /// range of a smaller backoff draw defer; senders outside it transmit
  /// concurrently (hidden terminals). 802.11 sense range is typically
  /// ~2x the decode range.
  double cs_factor = 2.2;
  /// Log-distance shadowing sigma in dB; 0 disables fading and makes
  /// reachability the pure unit disk. With fading, delivery at distance d
  /// succeeds with probability Phi(10*alpha*log10(radius/d) / sigma) —
  /// below 1 inside the disk, above 0 slightly beyond it.
  double fading_sigma_db = 0.0;
  double fading_alpha = 3.0;  // path-loss exponent
  Mobility mobility = Mobility::kStatic;
  double speed_min_mps = 1.0;   // random-waypoint speed draw, uniform
  double speed_max_mps = 3.0;
  SimDuration pause = 500 * kMillisecond;  // dwell at each waypoint
  SimDuration sample_interval = 100 * kMillisecond;  // connectivity cadence

  /// A topology other than the single-hop default was requested.
  [[nodiscard]] bool topology_set() const {
    return placement != Placement::kSingleHop;
  }
  /// The spatial layer can affect delivery at all. An infinite radius is
  /// *defined* as the single-hop medium: the harness installs no Topology
  /// and the run is byte-identical to a non-spatial one (the radius=inf
  /// golden test pins this). Fading is relative to the disk edge, so it
  /// too needs a finite radius to mean anything.
  [[nodiscard]] bool active() const {
    return topology_set() && std::isfinite(radius_m);
  }
};

/// Pooled spatial counters for one repetition (topology fields filled by
/// Topology::stats(), relay fields by RelayFabric::stats(); the harness
/// composes them and sums across repetitions).
struct SpatialStats {
  // Connectivity sampling (unit disk, fixed cadence).
  std::uint64_t samples = 0;
  std::uint64_t partition_events = 0;     // connected -> disconnected edges
  std::uint64_t partitioned_samples = 0;  // samples with > 1 component
  std::uint64_t path_hops_sum = 0;        // over connected ordered pairs
  std::uint64_t path_pairs = 0;
  std::uint64_t cs_domains_sum = 0;       // carrier-sense components
  // Relay/gossip (zero when the relay is not installed).
  std::uint64_t relay_origin_frames = 0;  // application broadcasts entering
  std::uint64_t relay_forwards = 0;       // gossip rebroadcasts sent
  std::uint64_t relay_suppressed = 0;     // forwards cancelled by duplicates
  std::uint64_t relay_duplicates = 0;     // duplicate receptions discarded
  std::uint64_t relay_deliveries = 0;     // unique non-origin app deliveries
};

struct Position {
  double x = 0.0;
  double y = 0.0;
};

class Topology final : public net::SpatialModel {
 public:
  /// `rng` is the topology's private root; placement, per-node motion and
  /// fading each get their own derived stream.
  Topology(const SpatialConfig& config, std::uint32_t n, Rng rng);

  [[nodiscard]] bool reachable(ProcessId src, ProcessId dst,
                               SimTime now) override;
  [[nodiscard]] bool carrier_sense(ProcessId a, ProcessId b,
                                   SimTime now) override;

  /// The node's position at `now` (advances mobility; `now` must be
  /// monotone across all queries, which medium-driven use guarantees).
  [[nodiscard]] Position position(ProcessId id, SimTime now);

  /// Advances mobility and connectivity sampling to `now`.
  void advance(SimTime now);

  /// Pins a node to a fixed position, excluding it from mobility. Test
  /// hook for exact-geometry cases (radius edge, colinear hidden triple).
  void pin(ProcessId id, Position p);

  [[nodiscard]] SpatialStats stats() const;
  [[nodiscard]] const trace::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const SpatialConfig& config() const { return config_; }

 private:
  struct Leg {
    Position from;
    Position to;
    SimTime start = 0;
    SimTime end = 0;  // end <= start encodes "pause over, draw next leg"
  };
  struct Node {
    Leg leg;        // current motion segment (from == to while paused)
    Rng rng;        // this node's waypoint stream
    bool pinned = false;
  };

  void advance_motion(SimTime now);
  void next_leg(Node& node, SimTime now);
  void sample_connectivity(SimTime at);
  [[nodiscard]] Position position_unlocked(const Node& node, SimTime now) const;
  [[nodiscard]] double distance(ProcessId a, ProcessId b, SimTime now);

  SpatialConfig config_;
  std::uint32_t n_ = 0;
  std::vector<Node> nodes_;
  Rng fading_rng_;
  SimTime advanced_to_ = 0;
  SimTime next_sample_ = 0;
  bool was_connected_ = true;
  trace::MetricsRegistry metrics_;
  trace::Counter* samples_ = nullptr;
  trace::Counter* partition_events_ = nullptr;
  trace::Counter* partitioned_samples_ = nullptr;
  trace::Counter* path_hops_sum_ = nullptr;
  trace::Counter* path_pairs_ = nullptr;
  trace::Counter* cs_domains_sum_ = nullptr;
};

[[nodiscard]] std::string to_string(Placement p);
[[nodiscard]] std::string to_string(Mobility m);

/// Parses a topology spec into `out` (placement + optional parameters):
///   single | grid | ring | random
/// optionally followed by (k=v,...) with keys r/radius ("inf" allowed),
/// area, cs, fading, alpha — e.g. "grid(r=150,area=400)". Returns false
/// and fills `error` (when non-null) on a malformed spec.
bool parse_topology(std::string_view spec, SpatialConfig* out,
                    std::string* error);

/// Parses a mobility spec into `out`:
///   static | waypoint            optionally waypoint(vmin=1,vmax=3,pause=500)
/// with speeds in m/s and pause in milliseconds.
bool parse_mobility(std::string_view spec, SpatialConfig* out,
                    std::string* error);

/// One-line human description ("grid r=150m area=300m waypoint 1-3m/s").
[[nodiscard]] std::string describe(const SpatialConfig& config);

/// Round-trip serializers: parse_topology(to_spec_topology(c)) and
/// parse_mobility(to_spec_mobility(c)) reproduce the config exactly
/// (numbers are printed with %.17g). The fuzzer uses these to emit
/// copy-pasteable reproducer command lines.
[[nodiscard]] std::string to_spec_topology(const SpatialConfig& config);
[[nodiscard]] std::string to_spec_mobility(const SpatialConfig& config);

}  // namespace turq::spatial
