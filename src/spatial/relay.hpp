// Counter-based gossip relay over the spatial Medium.
//
// RelayFabric implements net::BroadcastService: protocols attach to it
// exactly as they would to the Medium, and their broadcasts reach nodes
// beyond direct radio range by rebroadcast. The scheme is classic
// counter-based flooding (a well-studied fix for the broadcast storm
// problem): on first reception of a frame a node schedules a rebroadcast
// after a short random assessment delay; hearing the same frame again
// during the delay bumps a duplicate counter, and reaching the counter
// threshold cancels the rebroadcast — nodes surrounded by chatty
// neighbours stay quiet, sparse bridges forward.
//
// Framing: each relayed payload is prefixed by a 6-byte header
// [origin u8][hops u8][seq u32 LE]; receivers are handed the payload
// portion with src = origin, so the protocol above never sees relaying.
// Duplicate detection is per (receiver, origin, seq).
//
// Determinism: each node's assessment delays come from a stream derived
// from the fabric's root (itself derived from the repetition root), so
// relay jitter never perturbs medium or protocol draws and runs stay
// bit-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/broadcast_service.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"

namespace turq::spatial {

struct RelayConfig {
  /// Duplicates heard during assessment that cancel the rebroadcast.
  std::uint32_t counter_threshold = 2;
  /// Uniform assessment delay before forwarding, [min, max].
  SimDuration assess_min = 2 * kMillisecond;
  SimDuration assess_max = 10 * kMillisecond;
  /// TTL: a frame is not forwarded past this many hops.
  std::uint32_t max_hops = 8;
};

/// Bounded duplicate-suppression window over 32-bit wrapping sequence
/// numbers. Tracks the most recent `capacity` seqs per origin with a ring
/// of bits and a sliding lower bound: marking a seq ahead of the window
/// slides the base forward (evicting the oldest entries), and anything
/// behind the base is conservatively reported as already seen. Ordering
/// uses serial-number arithmetic, so the u32 seq wrapping past 2^32 keeps
/// comparing correctly instead of aliasing entry 0 (the unbounded dense
/// bitmap this replaces leaked linearly in soak runs and aliased on wrap).
class SeqWindow {
 public:
  static constexpr std::uint32_t kDefaultCapacity = 4096;

  explicit SeqWindow(std::uint32_t capacity = kDefaultCapacity)
      : bits_(capacity, false) {}

  /// Marks `seq` as seen; returns true when it was new.
  bool mark(std::uint32_t seq);

  /// Whether `seq` is marked (seqs behind the window count as seen).
  [[nodiscard]] bool seen(std::uint32_t seq) const;

  /// Lowest sequence number still tracked.
  [[nodiscard]] std::uint32_t base() const { return base_; }
  [[nodiscard]] std::size_t capacity() const { return bits_.size(); }

 private:
  std::uint32_t base_ = 0;
  std::vector<bool> bits_;  // slot for seq: seq % capacity
};

class RelayFabric final : public net::BroadcastService {
 public:
  static constexpr std::size_t kHeaderBytes = 6;

  RelayFabric(sim::Simulator& simulator, net::Medium& medium, RelayConfig cfg,
              std::uint32_t n, Rng rng);

  void attach(ProcessId id, net::BroadcastService::ReceiveHandler handler)
      override;
  void detach(ProcessId id) override;
  void broadcast(ProcessId src, FramePayload payload,
                 bool replace_queued) override;

  [[nodiscard]] const trace::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Relay counters for this repetition (topology fields stay zero).
  struct Stats {
    std::uint64_t origin_frames = 0;
    std::uint64_t forwards = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t deliveries = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// Shared cancellation state for one pending rebroadcast.
  struct Pending {
    std::uint32_t duplicates = 0;
    bool cancelled = false;
  };
  struct Node {
    ReceiveHandler app;
    Rng rng;  // assessment-delay stream
    // seen[origin] tracks recent seqs in a bounded sliding window.
    std::vector<SeqWindow> seen;
    std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending;
    bool attached = false;
  };

  void on_frame(ProcessId self, ProcessId from, BytesView frame);
  void forward(ProcessId self, ProcessId origin, std::uint32_t seq,
               std::uint32_t hops, FramePayload wrapped);
  [[nodiscard]] static std::uint64_t key_of(ProcessId origin,
                                            std::uint32_t seq) {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
  [[nodiscard]] bool mark_seen(Node& node, ProcessId origin,
                               std::uint32_t seq);

  sim::Simulator& sim_;
  net::Medium& medium_;
  RelayConfig cfg_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> next_seq_;
  trace::MetricsRegistry metrics_;
  trace::Counter* origin_frames_ = nullptr;
  trace::Counter* forwards_ = nullptr;
  trace::Counter* suppressed_ = nullptr;
  trace::Counter* duplicates_ = nullptr;
  trace::Counter* deliveries_ = nullptr;
};

}  // namespace turq::spatial
