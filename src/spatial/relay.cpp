#include "spatial/relay.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace turq::spatial {

namespace {

constexpr std::size_t kOriginOffset = 0;
constexpr std::size_t kHopsOffset = 1;
constexpr std::size_t kSeqOffset = 2;

void write_header(Bytes& frame, ProcessId origin, std::uint32_t hops,
                  std::uint32_t seq) {
  frame[kOriginOffset] = static_cast<std::uint8_t>(origin);
  frame[kHopsOffset] = static_cast<std::uint8_t>(hops);
  frame[kSeqOffset + 0] = static_cast<std::uint8_t>(seq);
  frame[kSeqOffset + 1] = static_cast<std::uint8_t>(seq >> 8);
  frame[kSeqOffset + 2] = static_cast<std::uint8_t>(seq >> 16);
  frame[kSeqOffset + 3] = static_cast<std::uint8_t>(seq >> 24);
}

}  // namespace

RelayFabric::RelayFabric(sim::Simulator& simulator, net::Medium& medium,
                         RelayConfig cfg, std::uint32_t n, Rng rng)
    : sim_(simulator), medium_(medium), cfg_(cfg), rng_(rng), nodes_(n),
      next_seq_(n, 0) {
  TURQ_ASSERT_MSG(n <= 256, "relay header encodes the origin in one byte");
  origin_frames_ = &metrics_.counter("spatial.relay.origin_frames");
  forwards_ = &metrics_.counter("spatial.relay.forwards");
  suppressed_ = &metrics_.counter("spatial.relay.suppressed");
  duplicates_ = &metrics_.counter("spatial.relay.duplicates");
  deliveries_ = &metrics_.counter("spatial.relay.deliveries");
}

void RelayFabric::attach(ProcessId id,
                         net::BroadcastService::ReceiveHandler handler) {
  TURQ_ASSERT(id < nodes_.size());
  Node& node = nodes_[id];
  node.app = std::move(handler);
  node.rng = rng_.derive("node", id);
  node.attached = true;
  medium_.attach(id, [this, id](ProcessId src, BytesView frame, bool bc) {
    if (!bc) {
      // Unicast is not relayed; hand it through untouched.
      Node& n = nodes_[id];
      if (n.attached && n.app) n.app(src, frame, false);
      return;
    }
    on_frame(id, src, frame);
  });
}

void RelayFabric::detach(ProcessId id) {
  if (id >= nodes_.size()) return;
  Node& node = nodes_[id];
  node.attached = false;
  node.app = {};
  for (auto& [key, pending] : node.pending) pending->cancelled = true;
  node.pending.clear();
  medium_.detach(id);
}

bool SeqWindow::mark(std::uint32_t seq) {
  // Serial-number arithmetic: the wrap at 2^32 keeps "ahead"/"behind"
  // meaningful as long as in-flight seqs span less than 2^31.
  const auto delta = static_cast<std::int32_t>(seq - base_);
  if (delta < 0) return false;  // behind the window: treat as already seen
  const auto cap = static_cast<std::uint32_t>(bits_.size());
  if (static_cast<std::uint32_t>(delta) >= cap) {
    // Slide so `seq` becomes the newest tracked entry, evicting whatever
    // falls off the back.
    const std::uint32_t new_base = seq - (cap - 1);
    const std::uint32_t advance = new_base - base_;
    if (advance >= cap) {
      std::fill(bits_.begin(), bits_.end(), false);
    } else {
      for (std::uint32_t i = 0; i < advance; ++i) {
        bits_[(base_ + i) % cap] = false;
      }
    }
    base_ = new_base;
  }
  if (bits_[seq % cap]) return false;
  bits_[seq % cap] = true;
  return true;
}

bool SeqWindow::seen(std::uint32_t seq) const {
  const auto delta = static_cast<std::int32_t>(seq - base_);
  if (delta < 0) return true;  // evicted or pre-window: conservatively seen
  if (static_cast<std::uint32_t>(delta) >= bits_.size()) return false;
  return bits_[seq % bits_.size()];
}

bool RelayFabric::mark_seen(Node& node, ProcessId origin, std::uint32_t seq) {
  if (node.seen.size() <= origin) node.seen.resize(origin + 1);
  return node.seen[origin].mark(seq);
}

void RelayFabric::broadcast(ProcessId src, FramePayload payload,
                            bool replace_queued) {
  TURQ_ASSERT(src < nodes_.size());
  TURQ_ASSERT_MSG(payload != nullptr, "broadcast payload must be non-null");
  const std::uint32_t seq = next_seq_[src]++;
  mark_seen(nodes_[src], src, seq);  // forwards of our own frame are dupes
  origin_frames_->add();
  Bytes wrapped(kHeaderBytes + payload->size());
  write_header(wrapped, src, 0, seq);
  std::copy(payload->begin(), payload->end(),
            wrapped.begin() + kHeaderBytes);
  medium_.send_broadcast(src, std::make_shared<const Bytes>(std::move(wrapped)),
                         replace_queued);
}

void RelayFabric::on_frame(ProcessId self, ProcessId from, BytesView frame) {
  (void)from;  // the MAC-level sender; gossip cares only about the origin
  if (frame.size() < kHeaderBytes) return;  // not relay-framed; drop
  const auto origin = static_cast<ProcessId>(frame[kOriginOffset]);
  const std::uint32_t hops = frame[kHopsOffset];
  const std::uint32_t seq =
      static_cast<std::uint32_t>(frame[kSeqOffset]) |
      (static_cast<std::uint32_t>(frame[kSeqOffset + 1]) << 8) |
      (static_cast<std::uint32_t>(frame[kSeqOffset + 2]) << 16) |
      (static_cast<std::uint32_t>(frame[kSeqOffset + 3]) << 24);
  if (origin >= nodes_.size()) return;
  Node& node = nodes_[self];
  if (!node.attached) return;

  if (!mark_seen(node, origin, seq)) {
    duplicates_->add();
    const auto it = node.pending.find(key_of(origin, seq));
    if (it != node.pending.end()) {
      if (++it->second->duplicates >= cfg_.counter_threshold) {
        // Enough neighbours already cover this frame: stay quiet.
        it->second->cancelled = true;
        suppressed_->add();
        TURQ_TRACE_EVENT(.at = sim_.now(),
                         .category = trace::Category::kSpatial,
                         .kind = trace::Kind::kRelaySuppressed,
                         .process = self,
                         .value = static_cast<std::int64_t>(origin),
                         .frame = seq);
        node.pending.erase(it);
      }
    }
    return;
  }

  deliveries_->add();
  if (node.app) node.app(origin, frame.subspan(kHeaderBytes), true);

  if (hops + 1 >= cfg_.max_hops) return;  // TTL exhausted
  // Schedule the rebroadcast after a random assessment delay; duplicates
  // heard meanwhile can cancel it (counter-based suppression).
  const SimDuration window =
      std::max<SimDuration>(0, cfg_.assess_max - cfg_.assess_min);
  const SimDuration delay =
      cfg_.assess_min + static_cast<SimDuration>(node.rng.uniform(
                            static_cast<std::uint64_t>(window) + 1));
  Bytes copy(frame.begin(), frame.end());
  write_header(copy, origin, hops + 1, seq);
  auto wrapped = std::make_shared<const Bytes>(std::move(copy));
  auto pending = std::make_shared<Pending>();
  node.pending[key_of(origin, seq)] = pending;
  sim_.schedule(delay, [this, self, origin, seq, hops, pending,
                        wrapped = std::move(wrapped)] {
    if (pending->cancelled) return;
    forward(self, origin, seq, hops + 1, wrapped);
  });
}

void RelayFabric::forward(ProcessId self, ProcessId origin, std::uint32_t seq,
                          std::uint32_t hops, FramePayload wrapped) {
  Node& node = nodes_[self];
  if (!node.attached) return;
  node.pending.erase(key_of(origin, seq));
  forwards_->add();
  TURQ_TRACE_EVENT(.at = sim_.now(), .category = trace::Category::kSpatial,
                   .kind = trace::Kind::kRelayForward, .process = self,
                   .value = static_cast<std::int64_t>(origin), .frame = seq,
                   .bytes = static_cast<std::uint32_t>(hops));
  // Forwards never supersede queued frames: gossip coverage depends on
  // them going out even when the origin keeps producing fresher state.
  medium_.send_broadcast(self, std::move(wrapped), /*replace_queued=*/false);
}

RelayFabric::Stats RelayFabric::stats() const {
  return Stats{
      .origin_frames = origin_frames_->value(),
      .forwards = forwards_->value(),
      .suppressed = suppressed_->value(),
      .duplicates = duplicates_->value(),
      .deliveries = deliveries_->value(),
  };
}

}  // namespace turq::spatial
