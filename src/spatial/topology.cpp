#include "spatial/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <numbers>

#include "common/assert.hpp"

namespace turq::spatial {

namespace {

/// Travel time for `dist` meters at `speed` m/s, floored at 1 ns so a
/// degenerate draw (waypoint == current position) still advances time.
SimDuration travel_time(double dist, double speed) {
  const double ns = dist / speed * 1e9;
  return std::max<SimDuration>(1, static_cast<SimDuration>(ns));
}

}  // namespace

Topology::Topology(const SpatialConfig& config, std::uint32_t n, Rng rng)
    : config_(config), n_(n), fading_rng_(rng.derive("fading", 0)) {
  TURQ_ASSERT_MSG(config_.topology_set(),
                  "single-hop needs no Topology; install none instead");
  samples_ = &metrics_.counter("spatial.samples");
  partition_events_ = &metrics_.counter("spatial.partition_events");
  partitioned_samples_ = &metrics_.counter("spatial.partitioned_samples");
  path_hops_sum_ = &metrics_.counter("spatial.path_hops_sum");
  path_pairs_ = &metrics_.counter("spatial.path_pairs");
  cs_domains_sum_ = &metrics_.counter("spatial.cs_domains_sum");

  Rng place = rng.derive("place", 0);
  nodes_.resize(n_);
  for (ProcessId id = 0; id < n_; ++id) {
    Position p;
    switch (config_.placement) {
      case Placement::kGrid: {
        const auto cols = static_cast<std::uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(n_))));
        const std::uint32_t rows = (n_ + cols - 1) / cols;
        const double cw = config_.area_m / cols;
        const double ch = config_.area_m / rows;
        p = {(id % cols + 0.5) * cw, (id / cols + 0.5) * ch};
        break;
      }
      case Placement::kRing: {
        const double c = config_.area_m / 2.0;
        const double r = config_.area_m * 0.4;
        const double theta = 2.0 * std::numbers::pi * id / n_;
        p = {c + r * std::cos(theta), c + r * std::sin(theta)};
        break;
      }
      case Placement::kRandom:
        p = {place.uniform_double() * config_.area_m,
             place.uniform_double() * config_.area_m};
        break;
      case Placement::kSingleHop:
        break;  // unreachable (asserted above)
    }
    Node& node = nodes_[id];
    node.leg = Leg{.from = p, .to = p, .start = 0, .end = 0};
    node.rng = rng.derive("motion", id);
  }
}

void Topology::pin(ProcessId id, Position p) {
  TURQ_ASSERT(id < n_);
  Node& node = nodes_[id];
  node.pinned = true;
  node.leg = Leg{.from = p, .to = p, .start = 0,
                 .end = std::numeric_limits<SimTime>::max()};
}

void Topology::next_leg(Node& node, SimTime now) {
  // Alternates travel legs and pauses. A leg with from == to is a pause
  // (or the initial placement); the leg after a pause travels to a fresh
  // uniformly drawn waypoint at a uniformly drawn speed.
  const SimTime start = node.leg.end;
  const Position at = node.leg.to;
  const bool was_pause =
      node.leg.from.x == node.leg.to.x && node.leg.from.y == node.leg.to.y;
  if (was_pause) {
    const Position dest{node.rng.uniform_double() * config_.area_m,
                        node.rng.uniform_double() * config_.area_m};
    const double speed =
        config_.speed_min_mps +
        node.rng.uniform_double() *
            (config_.speed_max_mps - config_.speed_min_mps);
    const double dist = std::hypot(dest.x - at.x, dest.y - at.y);
    node.leg = Leg{.from = at, .to = dest, .start = start,
                   .end = start + travel_time(dist, speed)};
  } else {
    node.leg = Leg{.from = at, .to = at, .start = start,
                   .end = start + std::max<SimDuration>(1, config_.pause)};
  }
  (void)now;
}

void Topology::advance_motion(SimTime now) {
  if (config_.mobility != Mobility::kWaypoint) return;
  for (Node& node : nodes_) {
    if (node.pinned) continue;
    while (node.leg.end <= now) next_leg(node, now);
  }
}

Position Topology::position_unlocked(const Node& node, SimTime now) const {
  const Leg& leg = node.leg;
  if (now <= leg.start || leg.end <= leg.start) return leg.from;
  if (now >= leg.end) return leg.to;
  const double f = static_cast<double>(now - leg.start) /
                   static_cast<double>(leg.end - leg.start);
  return {leg.from.x + (leg.to.x - leg.from.x) * f,
          leg.from.y + (leg.to.y - leg.from.y) * f};
}

void Topology::advance(SimTime now) {
  if (now < advanced_to_) return;  // queries are monotone; clamp stragglers
  while (next_sample_ <= now) {
    advance_motion(next_sample_);
    sample_connectivity(next_sample_);
    next_sample_ += std::max<SimDuration>(1, config_.sample_interval);
  }
  advance_motion(now);
  advanced_to_ = now;
}

Position Topology::position(ProcessId id, SimTime now) {
  TURQ_ASSERT(id < n_);
  advance(now);
  return position_unlocked(nodes_[id], now);
}

double Topology::distance(ProcessId a, ProcessId b, SimTime now) {
  const Position pa = position_unlocked(nodes_[a], now);
  const Position pb = position_unlocked(nodes_[b], now);
  return std::hypot(pa.x - pb.x, pa.y - pb.y);
}

bool Topology::reachable(ProcessId src, ProcessId dst, SimTime now) {
  TURQ_ASSERT(src < n_ && dst < n_);
  advance(now);
  const double d = distance(src, dst, now);
  if (!std::isfinite(config_.radius_m)) return true;
  if (config_.fading_sigma_db <= 0.0) {
    return d <= config_.radius_m;  // unit disk; the edge itself is in range
  }
  // Log-distance shadowing: the dB margin at distance d is
  // 10*alpha*log10(radius/d); a zero-mean Gaussian shadow with sigma dB
  // flips the outcome with probability Phi(-margin/sigma). Consumes one
  // draw from the dedicated fading stream per query.
  if (d <= 1e-9) return true;
  const double margin_db =
      10.0 * config_.fading_alpha * std::log10(config_.radius_m / d);
  const double z = margin_db / config_.fading_sigma_db;
  const double p_deliver = 0.5 * std::erfc(-z / std::numbers::sqrt2);
  return fading_rng_.uniform_double() < p_deliver;
}

bool Topology::carrier_sense(ProcessId a, ProcessId b, SimTime now) {
  TURQ_ASSERT(a < n_ && b < n_);
  advance(now);
  if (!std::isfinite(config_.radius_m)) return true;
  return distance(a, b, now) <= config_.radius_m * config_.cs_factor;
}

void Topology::sample_connectivity(SimTime at) {
  // Metrics describe the deterministic unit-disk graph at the sample
  // instant; per-frame fading luck is deliberately excluded.
  samples_->add();
  const std::uint32_t n = n_;
  if (n == 0) return;
  std::vector<std::uint8_t> adj(static_cast<std::size_t>(n) * n, 0);
  std::vector<std::uint8_t> cs_adj(static_cast<std::size_t>(n) * n, 0);
  const bool infinite = !std::isfinite(config_.radius_m);
  for (ProcessId a = 0; a < n; ++a) {
    for (ProcessId b = a + 1; b < n; ++b) {
      const double d = distance(a, b, at);
      const bool in = infinite || d <= config_.radius_m;
      const bool sensed = infinite || d <= config_.radius_m * config_.cs_factor;
      adj[a * n + b] = adj[b * n + a] = in ? 1 : 0;
      cs_adj[a * n + b] = cs_adj[b * n + a] = sensed ? 1 : 0;
    }
  }

  // Hop counts via BFS from every node (n <= 64 keeps this trivial).
  std::vector<std::uint32_t> hops(n);
  std::vector<ProcessId> queue;
  bool connected = true;
  for (ProcessId s = 0; s < n; ++s) {
    std::fill(hops.begin(), hops.end(), ~0U);
    hops[s] = 0;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ProcessId u = queue[head];
      for (ProcessId v = 0; v < n; ++v) {
        if (adj[u * n + v] != 0 && hops[v] == ~0U) {
          hops[v] = hops[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (ProcessId t = s + 1; t < n; ++t) {
      if (hops[t] == ~0U) {
        connected = false;
        continue;
      }
      path_hops_sum_->add(hops[t]);
      path_pairs_->add();
    }
  }
  if (!connected) partitioned_samples_->add();
  if (was_connected_ && !connected) partition_events_->add();
  was_connected_ = connected;

  // Carrier-sense domains: connected components of the sense graph — the
  // denominator for per-domain channel utilization in trace_inspect.
  std::vector<std::uint8_t> seen(n, 0);
  std::uint64_t domains = 0;
  for (ProcessId s = 0; s < n; ++s) {
    if (seen[s] != 0) continue;
    ++domains;
    queue.assign(1, s);
    seen[s] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ProcessId u = queue[head];
      for (ProcessId v = 0; v < n; ++v) {
        if (cs_adj[u * n + v] != 0 && seen[v] == 0) {
          seen[v] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  cs_domains_sum_->add(domains);
}

SpatialStats Topology::stats() const {
  SpatialStats s;
  s.samples = samples_->value();
  s.partition_events = partition_events_->value();
  s.partitioned_samples = partitioned_samples_->value();
  s.path_hops_sum = path_hops_sum_->value();
  s.path_pairs = path_pairs_->value();
  s.cs_domains_sum = cs_domains_sum_->value();
  return s;
}

// ------------------------------------------------------------------ specs --

std::string to_string(Placement p) {
  switch (p) {
    case Placement::kSingleHop: return "single";
    case Placement::kGrid: return "grid";
    case Placement::kRing: return "ring";
    case Placement::kRandom: return "random";
  }
  return "?";
}

std::string to_string(Mobility m) {
  return m == Mobility::kWaypoint ? "waypoint" : "static";
}

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Splits "name(k=v,...)" into name and k=v pairs. Returns false on
/// unbalanced parentheses or a malformed pair.
bool split_spec(std::string_view spec, std::string_view* name,
                std::vector<std::pair<std::string, std::string>>* args,
                std::string* error) {
  const std::size_t open = spec.find('(');
  if (open == std::string_view::npos) {
    *name = spec;
    return true;
  }
  if (spec.back() != ')') {
    set_error(error, "expected ')' at the end of '" + std::string(spec) + "'");
    return false;
  }
  *name = spec.substr(0, open);
  std::string_view body = spec.substr(open + 1, spec.size() - open - 2);
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "expected key=value, got '" + std::string(pair) + "'");
      return false;
    }
    args->emplace_back(std::string(pair.substr(0, eq)),
                       std::string(pair.substr(eq + 1)));
  }
  return true;
}

bool parse_number(const std::string& value, double* out, std::string* error) {
  if (value == "inf") {
    *out = kInfiniteRadius;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    set_error(error, "bad number '" + value + "'");
    return false;
  }
  return true;
}

}  // namespace

bool parse_topology(std::string_view spec, SpatialConfig* out,
                    std::string* error) {
  std::string_view name;
  std::vector<std::pair<std::string, std::string>> args;
  if (!split_spec(spec, &name, &args, error)) return false;
  if (name == "single" || name == "single-hop") {
    out->placement = Placement::kSingleHop;
  } else if (name == "grid") {
    out->placement = Placement::kGrid;
  } else if (name == "ring") {
    out->placement = Placement::kRing;
  } else if (name == "random") {
    out->placement = Placement::kRandom;
  } else {
    set_error(error, "unknown topology '" + std::string(name) +
                         "' (expected single|grid|ring|random)");
    return false;
  }
  for (const auto& [key, value] : args) {
    double v = 0.0;
    if (!parse_number(value, &v, error)) return false;
    if (key == "r" || key == "radius") {
      out->radius_m = v;
    } else if (key == "area") {
      out->area_m = v;
    } else if (key == "cs") {
      out->cs_factor = v;
    } else if (key == "fading") {
      out->fading_sigma_db = v;
    } else if (key == "alpha") {
      out->fading_alpha = v;
    } else {
      set_error(error, "unknown topology key '" + key +
                           "' (expected r|radius|area|cs|fading|alpha)");
      return false;
    }
  }
  return true;
}

bool parse_mobility(std::string_view spec, SpatialConfig* out,
                    std::string* error) {
  std::string_view name;
  std::vector<std::pair<std::string, std::string>> args;
  if (!split_spec(spec, &name, &args, error)) return false;
  if (name == "static") {
    out->mobility = Mobility::kStatic;
  } else if (name == "waypoint") {
    out->mobility = Mobility::kWaypoint;
  } else {
    set_error(error, "unknown mobility '" + std::string(name) +
                         "' (expected static|waypoint)");
    return false;
  }
  for (const auto& [key, value] : args) {
    double v = 0.0;
    if (!parse_number(value, &v, error)) return false;
    if (key == "vmin") {
      out->speed_min_mps = v;
    } else if (key == "vmax") {
      out->speed_max_mps = v;
    } else if (key == "pause") {
      out->pause = static_cast<SimDuration>(v * kMillisecond);
    } else {
      set_error(error, "unknown mobility key '" + key +
                           "' (expected vmin|vmax|pause)");
      return false;
    }
  }
  return true;
}

std::string describe(const SpatialConfig& config) {
  if (!config.topology_set()) return "single-hop";
  char buf[160];
  std::string out = to_string(config.placement);
  if (std::isfinite(config.radius_m)) {
    std::snprintf(buf, sizeof buf, " r=%.0fm area=%.0fm", config.radius_m,
                  config.area_m);
  } else {
    std::snprintf(buf, sizeof buf, " r=inf area=%.0fm", config.area_m);
  }
  out += buf;
  if (config.fading_sigma_db > 0.0) {
    std::snprintf(buf, sizeof buf, " fading=%.1fdB", config.fading_sigma_db);
    out += buf;
  }
  if (config.mobility == Mobility::kWaypoint) {
    std::snprintf(buf, sizeof buf, " waypoint %.1f-%.1fm/s pause %.0fms",
                  config.speed_min_mps, config.speed_max_mps,
                  to_milliseconds(config.pause));
    out += buf;
  } else {
    out += " static";
  }
  return out;
}

namespace {

/// %.17g round-trips IEEE 754 binary64 through strtod exactly.
std::string spec_number(double x) {
  if (!std::isfinite(x)) return "inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

}  // namespace

std::string to_spec_topology(const SpatialConfig& config) {
  if (!config.topology_set()) return "single";
  std::string out = to_string(config.placement);
  out += "(r=" + spec_number(config.radius_m);
  out += ",area=" + spec_number(config.area_m);
  out += ",cs=" + spec_number(config.cs_factor);
  if (config.fading_sigma_db > 0.0) {
    out += ",fading=" + spec_number(config.fading_sigma_db);
    out += ",alpha=" + spec_number(config.fading_alpha);
  }
  out += ")";
  return out;
}

std::string to_spec_mobility(const SpatialConfig& config) {
  if (config.mobility != Mobility::kWaypoint) return "static";
  std::string out = "waypoint(vmin=" + spec_number(config.speed_min_mps);
  out += ",vmax=" + spec_number(config.speed_max_mps);
  out += ",pause=" + spec_number(to_milliseconds(config.pause));
  out += ")";
  return out;
}

}  // namespace turq::spatial
